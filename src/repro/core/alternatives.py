"""Design-alternative construction (Figure 1).

Given a base footprint, derive the alternative set the paper evaluates:
the 180-degree rotation, internal relayouts (same bounding box, dedicated
resources moved), and external relayouts (different bounding box).  The
legality rule of Section V-A is enforced: shapes using embedded memory are
never rotated by 90/270 degrees because BRAM strips are vertical on the
fabric — their bounding box can only change via a relayout that keeps the
strips vertical.
"""

from __future__ import annotations

import random
from typing import Callable, List, Optional

from repro.fabric.resource import ResourceType
from repro.modules.footprint import Footprint
from repro.modules.module import Module
from repro.modules.transform import (
    distinct_footprints,
    external_relayout,
    internal_relayout,
    mirror_horizontal,
    mirror_vertical,
    rotate90,
    rotate180,
    rotate270,
)


def legal_rigid_transforms(fp: Footprint) -> List[Callable[[Footprint], Footprint]]:
    """The rigid transforms legal for this footprint on a column fabric."""
    transforms: List[Callable[[Footprint], Footprint]] = [rotate180]
    counts = fp.resource_counts()
    uses_dedicated = any(k.is_dedicated for k in counts)
    if not uses_dedicated:
        transforms.extend([rotate90, rotate270, mirror_horizontal, mirror_vertical])
    else:
        # mirroring keeps strips vertical, so it stays legal
        transforms.extend([mirror_horizontal, mirror_vertical])
    return transforms


def expand_alternatives(
    base: Footprint,
    max_alternatives: int = 4,
    include_internal: bool = True,
    include_external: bool = True,
    seed: int = 0,
) -> List[Footprint]:
    """Build up to ``max_alternatives`` distinct shapes from ``base``.

    Order of preference mirrors the paper's experiment: base, rot180,
    internal relayout, external relayout, then the remaining rigid
    transforms as fillers.
    """
    if max_alternatives < 1:
        raise ValueError("need at least one alternative")
    rng = random.Random(seed)
    candidates: List[Footprint] = [base, rotate180(base)]
    if include_internal:
        candidates.append(internal_relayout(base, rng))
    if include_external:
        counts = base.resource_counts()
        only_clb_bram = set(counts) <= {ResourceType.CLB, ResourceType.BRAM}
        if only_clb_bram and counts.get(ResourceType.CLB, 0) > 0:
            for delta in (2, -2, 3, -3):
                h = base.height + delta
                if h >= 1:
                    candidates.append(external_relayout(base, h))
    for t in legal_rigid_transforms(base):
        candidates.append(t(base))
    return distinct_footprints(candidates)[:max_alternatives]


def with_alternatives(
    name: str, base: Footprint, max_alternatives: int = 4, seed: int = 0
) -> Module:
    """Module from a base shape plus derived alternatives."""
    return Module(name, expand_alternatives(base, max_alternatives, seed=seed))

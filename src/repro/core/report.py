"""Placement reports and ASCII rendering.

Text renderings of fabrics with placed modules (the Figure 3 / Figure 5
style pictures) and a tabular per-module report used by the examples and
the experiment logs.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.core.result import PlacementResult
from repro.fabric.resource import RESOURCE_CHARS, ResourceType
from repro.metrics.utilization import extent_utilization, region_utilization

#: characters assigned to modules in rendering order
_MODULE_CHARS = "0123456789abcdefghijklmnopqrstuvwxyzABCDEFGHJLNOPQRSTUVWXYZ"


def render_placement(result: PlacementResult, show_static: bool = True) -> str:
    """ASCII picture: each module drawn with its own character.

    Unused fabric shows its resource character; static cells show '#'.
    """
    region = result.region
    canvas = np.full((region.height, region.width), "", dtype=object)
    chars = {int(k): c for k, c in RESOURCE_CHARS.items()}
    for y in range(region.height):
        for x in range(region.width):
            if show_static and not region.reconfigurable[y, x]:
                canvas[y, x] = "#"
            else:
                canvas[y, x] = chars[int(region.grid.cells[y, x])]
    for i, p in enumerate(result.placements):
        ch = _MODULE_CHARS[i % len(_MODULE_CHARS)]
        for x, y, _ in p.absolute_cells():
            canvas[y, x] = ch
    return "\n".join(
        "".join(canvas[y, x] for x in range(region.width))
        for y in range(region.height - 1, -1, -1)
    )


def placement_report(result: PlacementResult) -> str:
    """Multi-line textual report: summary, metrics, per-module table."""
    lines: List[str] = []
    lines.append(f"placement: {result.summary()}")
    if result.placements:
        lines.append(
            f"utilization: extent-window={extent_utilization(result):.1%} "
            f"whole-region={region_utilization(result):.1%}"
        )
    header = f"{'module':<10} {'alt':>3} {'anchor':>9} {'bbox':>7} {'tiles':>5} resources"
    lines.append(header)
    lines.append("-" * len(header))
    for p in sorted(result.placements, key=lambda p: (p.x, p.y)):
        fp = p.footprint
        res = ",".join(
            f"{k.name}:{n}" for k, n in sorted(fp.resource_counts().items())
        )
        lines.append(
            f"{p.module.name:<10} {p.shape_index:>3} "
            f"{f'({p.x},{p.y})':>9} {f'{fp.width}x{fp.height}':>7} "
            f"{fp.area:>5} {res}"
        )
    for mod in result.unplaced:
        lines.append(f"{mod.name:<10} UNPLACED")
    return "\n".join(lines)


def side_by_side(left: str, right: str, gap: int = 4, labels: Optional[tuple] = None) -> str:
    """Join two ASCII renderings horizontally (the Figure 5 layout)."""
    l_lines = left.splitlines()
    r_lines = right.splitlines()
    height = max(len(l_lines), len(r_lines))
    l_w = max((len(s) for s in l_lines), default=0)
    l_lines += [""] * (height - len(l_lines))
    r_lines += [""] * (height - len(r_lines))
    out = []
    if labels is not None:
        out.append(f"{labels[0]:<{l_w + gap}}{labels[1]}")
    for a, b in zip(l_lines, r_lines):
        out.append(f"{a:<{l_w + gap}}{b}")
    return "\n".join(out)

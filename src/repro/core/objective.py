"""Placement objectives.

The paper's objective (Eq. 6) selects, from the valid solution set A*, the
solutions minimal in the x direction: ``A* = min_x A``.  Minimizing the
occupied extent concentrates the modules, which both maximizes the average
resource utilization within the used span and leaves the largest
contiguous area free for future modules.

Besides the paper's extent objective we provide two natural ablation
objectives used by the benchmark suite.
"""

from __future__ import annotations

from enum import Enum
from typing import List, Sequence

from repro.cp.model import Model
from repro.cp.variable import IntVar
from repro.modules.module import Module


class ObjectiveKind(Enum):
    """Which scalar the branch-and-bound minimizes."""

    #: the paper's Eq. 6: minimize the maximum x extent of any module
    MIN_EXTENT_X = "extent-x"
    #: symmetric variant: minimize the maximum y extent
    MIN_EXTENT_Y = "extent-y"
    #: minimize the sum of module right edges (a packing 'center of mass'
    #: objective; weaker bound propagation, used in ablation A4)
    MIN_TOTAL_RIGHT = "total-right"


def build_objective(
    model: Model,
    kind: ObjectiveKind,
    modules: Sequence[Module],
    xs: Sequence[IntVar],
    ys: Sequence[IntVar],
    ss: Sequence[IntVar],
    width: int,
    height: int,
) -> IntVar:
    """Create and constrain the objective variable; returns it.

    For the extent objectives each module contributes
    ``edge_i = anchor_i + size(shape_i)`` where the size is tied to the
    shape variable with an element constraint; the objective is the maximum
    of the edges.
    """
    if kind in (ObjectiveKind.MIN_EXTENT_X, ObjectiveKind.MIN_EXTENT_Y):
        horizontal = kind is ObjectiveKind.MIN_EXTENT_X
        bound = width if horizontal else height
        edges: List[IntVar] = []
        for i, m in enumerate(modules):
            sizes = [
                (fp.width if horizontal else fp.height) for fp in m.shapes
            ]
            size_var = model.element_of(sizes, ss[i], name=f"size[{i}]")
            edge = model.int_var(0, bound, f"edge[{i}]")
            model.add_sum(edge, xs[i] if horizontal else ys[i], size_var)
            edges.append(edge)
        objective = model.int_var(0, bound, "extent")
        model.add_max(objective, edges)
        return objective

    if kind is ObjectiveKind.MIN_TOTAL_RIGHT:
        edges = []
        for i, m in enumerate(modules):
            sizes = [fp.width for fp in m.shapes]
            size_var = model.element_of(sizes, ss[i], name=f"size[{i}]")
            edge = model.int_var(0, width, f"edge[{i}]")
            model.add_sum(edge, xs[i], size_var)
            edges.append(edge)
        objective = model.int_var(0, width * max(1, len(modules)), "total_right")
        model.add_linear_eq(
            [1] * len(edges) + [-1], list(edges) + [objective], 0
        )
        return objective

    raise ValueError(f"unknown objective kind: {kind}")

"""Large-neighborhood search around the CP placer.

Pure branch-and-bound proves optimality on small instances but improves
slowly on 30-module instances: after the first greedy-dive solution the
bound forces a global restructuring that chronological backtracking
explores inefficiently.  LNS is the standard CP remedy and keeps the exact
kernel: every iteration *freezes* most modules at their incumbent
positions, masks their cells out of the region, and re-solves the
remaining modules as a small CP subproblem constrained to beat the
incumbent extent.  Neighborhoods are biased toward the extent frontier —
the modules whose right edges define the objective — because only moving
those can reduce it.

The paper itself solves the whole model monolithically (Section IV) on
SICStus; LNS here is an orchestration layer above the same constraint
model, not a relaxation: every incumbent it returns is a solution of the
full model (and is re-verified by ``PlacementResult.verify`` in tests).
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, replace
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.placer import CPPlacer, PlacerConfig
from repro.core.result import Placement, PlacementResult
from repro.fabric.cache import AnchorMaskCache
from repro.fabric.region import NarrowedRegion, PartialRegion
from repro.modules.module import Module
from repro.obs.profile import SolveProfile
from repro.obs.trace import LNS_IMPROVED, LNS_NEIGHBORHOOD, Tracer


@dataclass
class LNSConfig:
    """Knobs of the LNS driver."""

    #: overall wall-clock budget in seconds
    time_limit: float = 10.0
    #: per-subproblem CP budget in seconds
    sub_time_limit: float = 1.5
    #: how many modules to unfix per iteration
    neighborhood: int = 8
    #: stop after this many consecutive non-improving iterations (None = run
    #: out the clock)
    stall_limit: Optional[int] = 12
    #: margin (in columns) defining the extent frontier
    frontier_margin: int = 2
    seed: int = 0
    #: configuration of the initial full solve
    initial: Optional[PlacerConfig] = None
    #: aggregate per-propagator profiles across all CP subsolves into
    #: ``result.stats["profile"]``
    profile: bool = False
    #: structured event sink for LNS-level events (neighborhood chosen,
    #: incumbent improved) — also threaded into every CP subsolve
    tracer: Optional[Tracer] = None
    #: anchor-mask cache shared by the initial solve and every subproblem;
    #: None = one private cache per ``place`` call (still warm across
    #: iterations).  Portfolio workers pass their per-process cache here.
    cache: Optional[AnchorMaskCache] = None
    #: incremental geost propagation in every CP solve (initial, restart
    #: rescue, and all subproblems); False = wholesale re-filtering
    incremental: bool = True
    #: bitboard-first vectorized sweep in every CP solve; False = the
    #: per-shape scalar oracle path
    bitboard: bool = True
    #: name of a registered backend (usually ``"analytical"``) whose
    #: legalized placement replaces the CP-dive/greedy bootstrap as the
    #: initial incumbent (None = cold construction ladder)
    warm_start: Optional[str] = None
    #: fraction of ``time_limit`` granted to the warm-start seeder
    warm_start_budget: float = 0.25


class LNSPlacer:
    """Anytime extent minimization: CP construction + LNS improvement."""

    def __init__(self, config: Optional[LNSConfig] = None) -> None:
        self.config = config or LNSConfig()
        self._profile_total: Optional[SolveProfile] = None
        self._cache: Optional[AnchorMaskCache] = None

    # ------------------------------------------------------------------
    def place(
        self, region: PartialRegion, modules: Sequence[Module]
    ) -> PlacementResult:
        cfg = self.config
        rng = random.Random(cfg.seed)
        start = time.monotonic()
        deadline = start + cfg.time_limit
        tracer = cfg.tracer if cfg.tracer is not None and cfg.tracer.enabled else None
        self._profile_total: Optional[SolveProfile] = (
            SolveProfile(meta={"placer": "lns", "seed": cfg.seed})
            if cfg.profile
            else None
        )

        # one anchor-mask cache for the whole anytime run: the initial
        # solve computes (or inherits) the base-region masks once and every
        # LNS subproblem derives its masks from them incrementally
        self._cache = cfg.cache if cfg.cache is not None else AnchorMaskCache()

        # warm start: a seeder backend (the analytical relaxation) can
        # hand over a verified full placement, skipping the construction
        # ladder entirely — the improvement loop starts optimizing at once
        base: Optional[PlacementResult] = None
        warm_stats = {}
        if cfg.warm_start and modules:
            warm = self._warm_solve(region, modules, tracer)
            if warm is not None:
                base = warm
                warm_stats = {
                    "backend": cfg.warm_start,
                    "objective": max(p.right for p in warm.placements),
                    "elapsed": warm.elapsed,
                }

        # construction: CP dive first (usually sub-second); if it thrashes,
        # fall back to the bottom-left heuristic — LNS only needs *some*
        # incumbent, the improvement loop does the optimization
        if base is None:
            initial_cfg = cfg.initial or PlacerConfig(
                time_limit=min(cfg.time_limit / 2, 5.0),
                first_solution_only=True,
                incremental=cfg.incremental,
                bitboard=cfg.bitboard,
            )
            if cfg.profile or tracer is not None:
                initial_cfg = replace(
                    initial_cfg, profile=cfg.profile, tracer=tracer
                )
            if initial_cfg.cache is None:
                initial_cfg = replace(initial_cfg, cache=self._cache)
            base = CPPlacer(initial_cfg).place(region, modules)
            self._absorb_profile(base)
        if not base.placements or not base.all_placed:
            from repro.placer.greedy import BottomLeftPlacer

            # the initial CP solve warmed the shared cache, so the greedy
            # rescue's static masks are pure hits
            greedy = BottomLeftPlacer().place(region, modules, cache=self._cache)
            if greedy.all_placed and greedy.placements:
                base = greedy
        if not base.placements or not base.all_placed:
            # last resort: randomized Luby restarts with the remaining budget
            restart_cfg = PlacerConfig(
                time_limit=max(0.5, deadline - time.monotonic()),
                first_solution_only=True,
                construction="restart",
                seed=cfg.seed,
                profile=cfg.profile,
                tracer=tracer,
                cache=self._cache,
                incremental=cfg.incremental,
                bitboard=cfg.bitboard,
            )
            restarted = CPPlacer(restart_cfg).place(region, modules)
            self._absorb_profile(restarted)
            if restarted.all_placed and restarted.placements:
                base = restarted
            else:
                base.elapsed = time.monotonic() - start
                return base

        best: List[Placement] = list(base.placements)
        best_extent = max(p.right for p in best)
        trajectory: List[Tuple[float, int]] = [
            (time.monotonic() - start, best_extent)
        ]
        iterations = 0
        stall = 0
        while time.monotonic() < deadline:
            if cfg.stall_limit is not None and stall >= cfg.stall_limit:
                break
            iterations += 1
            free_idx = self._neighborhood(best, best_extent, rng)
            if tracer is not None:
                tracer.emit(
                    LNS_NEIGHBORHOOD,
                    iteration=iterations,
                    free=len(free_idx),
                    frontier=sum(
                        1
                        for i in free_idx
                        if best[i].right >= best_extent - cfg.frontier_margin
                    ),
                )
            improved = self._reoptimize(
                region, best, free_idx, best_extent, deadline, tracer
            )
            if improved is not None:
                best = improved
                best_extent = max(p.right for p in best)
                trajectory.append((time.monotonic() - start, best_extent))
                stall = 0
                if tracer is not None:
                    tracer.emit(
                        LNS_IMPROVED, iteration=iterations, extent=best_extent
                    )
            else:
                stall += 1

        stats = {
            "method": "lns",
            "iterations": iterations,
            "trajectory": trajectory,
            "initial_extent": trajectory[0][1],
            "shapes_considered": sum(m.n_alternatives for m in modules),
            "mask_cache": self._cache.stats(),
        }
        if warm_stats:
            stats["warm_start"] = warm_stats
        if self._profile_total is not None:
            stats["profile"] = self._profile_total
        return PlacementResult(
            region,
            best,
            [],
            extent=best_extent,
            status="feasible",
            elapsed=time.monotonic() - start,
            stats=stats,
        )

    def _warm_solve(
        self,
        region: PartialRegion,
        modules: Sequence[Module],
        tracer: Optional[Tracer],
    ) -> Optional[PlacementResult]:
        """Run the warm-start seeder; None when its answer is unusable.

        Unusable = partial or failing verification — the caller then runs
        the ordinary construction ladder, never adopts a wrong incumbent.
        """
        # function-local imports: the backend adapters import this module
        from repro.core.backend.protocol import PlacementRequest
        from repro.core.backend.registry import create_backend

        cfg = self.config
        result = create_backend(cfg.warm_start).place(
            PlacementRequest(
                region,
                list(modules),
                seed=cfg.seed,
                time_limit=cfg.time_limit * cfg.warm_start_budget,
                cache=self._cache,
                tracer=tracer,
            )
        )
        if not result.placements or not result.all_placed:
            return None
        try:
            result.verify()
        except ValueError:
            return None
        return result

    def _absorb_profile(self, result: PlacementResult) -> None:
        """Fold one CP subsolve's profile into the LNS aggregate."""
        if self._profile_total is None:
            return
        sub = result.stats.get("profile")
        if sub is not None:
            self._profile_total = self._profile_total + sub

    # ------------------------------------------------------------------
    def _neighborhood(
        self, placements: List[Placement], extent: int, rng: random.Random
    ) -> List[int]:
        """Indices to unfix: the extent frontier plus random filler."""
        cfg = self.config
        frontier = [
            i
            for i, p in enumerate(placements)
            if p.right >= extent - cfg.frontier_margin
        ]
        in_frontier = set(frontier)
        rest = [i for i in range(len(placements)) if i not in in_frontier]
        rng.shuffle(rest)
        take = max(0, cfg.neighborhood - len(frontier))
        return frontier + rest[:take]

    def _reoptimize(
        self,
        region: PartialRegion,
        placements: List[Placement],
        free_idx: List[int],
        best_extent: int,
        deadline: float,
        tracer: Optional[Tracer] = None,
    ) -> Optional[List[Placement]]:
        """Re-place ``free_idx`` modules; None unless strictly better."""
        cfg = self.config
        frozen = [p for i, p in enumerate(placements) if i not in free_idx]
        frozen_extent = max((p.right for p in frozen), default=0)
        if frozen_extent >= best_extent:
            return None  # this neighborhood cannot beat the incumbent

        # carve frozen modules' cells out of the reconfigurable area; a
        # NarrowedRegion keeps the lineage so the kernel can derive the
        # subproblem's anchor masks from the cached base-region masks
        # instead of recomputing every cross-correlation
        blocked = np.array(
            [(y, x) for p in frozen for x, y, _ in p.absolute_cells()],
            dtype=np.int64,
        ).reshape(-1, 2)
        sub_region = NarrowedRegion(region, blocked, f"{region.name}-lns")

        budget = min(cfg.sub_time_limit, max(0.1, deadline - time.monotonic()))
        sub_cfg = PlacerConfig(
            time_limit=budget, profile=cfg.profile, tracer=tracer,
            cache=self._cache, incremental=cfg.incremental,
            bitboard=cfg.bitboard,
        )
        free_modules = [placements[i].module for i in free_idx]
        placer = CPPlacer(sub_cfg)
        # beat the incumbent: every free module must end left of it
        result = placer.place_bounded(sub_region, free_modules, best_extent - 1)
        self._absorb_profile(result)
        if not result.placements or not result.all_placed:
            return None
        new_extent = max(
            frozen_extent, max(p.right for p in result.placements)
        )
        if new_extent >= best_extent:
            return None
        return frozen + list(result.placements)

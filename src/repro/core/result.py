"""Placement result records shared by the CP placer and all baselines."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.fabric.region import PartialRegion
from repro.fabric.resource import ResourceType
from repro.modules.footprint import Footprint
from repro.modules.module import Module


@dataclass(frozen=True)
class Placement:
    """One placed module: which alternative, anchored where."""

    module: Module
    shape_index: int
    x: int
    y: int

    @property
    def footprint(self) -> Footprint:
        return self.module.shapes[self.shape_index]

    @property
    def right(self) -> int:
        """One past the rightmost column the module's bounding box reaches."""
        return self.x + self.footprint.width

    @property
    def top(self) -> int:
        return self.y + self.footprint.height

    def absolute_cells(self) -> List[Tuple[int, int, ResourceType]]:
        return [
            (self.x + dx, self.y + dy, k) for dx, dy, k in self.footprint.cells
        ]

    def overlaps(self, other: "Placement") -> bool:
        mine = {(x, y) for x, y, _ in self.absolute_cells()}
        theirs = {(x, y) for x, y, _ in other.absolute_cells()}
        return bool(mine & theirs)


@dataclass
class PlacementResult:
    """Outcome of a placement run (any placer)."""

    region: PartialRegion
    placements: List[Placement]
    #: modules that could not be placed (always empty for complete placers
    #: on feasible instances; greedy/online baselines may reject modules)
    unplaced: List[Module] = field(default_factory=list)
    #: minimized x extent (Eq. 6); None when nothing was placed
    extent: Optional[int] = None
    #: "optimal", "feasible", "infeasible", "unknown"
    status: str = "feasible"
    #: wall-clock seconds spent placing
    elapsed: float = 0.0
    #: solver statistics or placer-specific counters
    stats: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.extent is None and self.placements:
            self.extent = max(p.right for p in self.placements)

    # ------------------------------------------------------------------
    @property
    def all_placed(self) -> bool:
        return not self.unplaced

    @property
    def solved(self) -> bool:
        """Every module placed and the run ended in a solution state."""
        return not self.unplaced and self.status in ("feasible", "optimal")

    @property
    def proved_optimal(self) -> bool:
        """The extent is a *proven* optimum, not just the best incumbent."""
        return self.status == "optimal" and not self.unplaced

    def used_cells(self) -> int:
        return sum(p.footprint.area for p in self.placements)

    def occupancy_mask(self) -> np.ndarray:
        """(H, W) boolean mask of cells used by placed modules."""
        mask = np.zeros((self.region.height, self.region.width), dtype=bool)
        for p in self.placements:
            for x, y, _ in p.absolute_cells():
                mask[y, x] = True
        return mask

    def verify(self) -> None:
        """Raise ``ValueError`` if the placement violates M_a, M_b or M_c."""
        allowed = self.region.allowed_mask()
        grid = self.region.grid.cells
        seen: Dict[Tuple[int, int], str] = {}
        for p in self.placements:
            for x, y, kind in p.absolute_cells():
                if not (0 <= x < self.region.width and 0 <= y < self.region.height):
                    raise ValueError(
                        f"{p.module.name}: tile ({x},{y}) outside the region (M_a)"
                    )
                if not allowed[y, x]:
                    raise ValueError(
                        f"{p.module.name}: tile ({x},{y}) not reconfigurable (M_a)"
                    )
                if grid[y, x] != int(kind):
                    raise ValueError(
                        f"{p.module.name}: tile ({x},{y}) needs {kind.name}, "
                        f"fabric has {ResourceType(int(grid[y, x])).name} (M_b)"
                    )
                if (x, y) in seen:
                    raise ValueError(
                        f"{p.module.name} overlaps {seen[(x, y)]} at ({x},{y}) (M_c)"
                    )
                seen[(x, y)] = p.module.name

    def summary(self) -> str:
        parts = [
            f"placed={len(self.placements)}",
            f"unplaced={len(self.unplaced)}",
            f"extent={self.extent}",
            f"status={self.status}",
            f"elapsed={self.elapsed:.2f}s",
        ]
        return " ".join(parts)

"""Runtime defragmentation by module relocation.

The runtime counterpart of the paper's offline result: as modules come and
go, the free space of a runtime reconfigurable system shatters (external
fragmentation).  A defragmenter relocates placed modules — at a
reconfiguration cost — to compact the floorplan.  Design alternatives pay
off a second time here: a module that may change layout when moved has
more relocation sites, so compaction gets further per move.

We deliberately keep the paper's restriction in mind: "restoring the
module with a different design alternative would present a problem in
restoring the state.  Consequently, we do not consider changing design
alternatives at run-time."  The defragmenter therefore supports both
policies:

* ``allow_shape_change=False`` (the paper's stateful-module assumption) —
  modules only translate;
* ``allow_shape_change=True`` (valid for stateless/restartable modules) —
  relocation may pick a different alternative.

Algorithm: greedy left-compaction.  Repeatedly take the module whose right
edge defines the extent, enumerate its relocation sites strictly left of
its current anchor, move it to the bottom-left-most one; stop when no
extent-defining module can move (or a move budget is exhausted).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.core.relocation import (
    RelocationSite,
    relocation_distance,
    relocation_sites,
)
from repro.core.result import Placement, PlacementResult


@dataclass
class Move:
    """One executed relocation."""

    module: str
    from_pos: Tuple[int, int]
    to_pos: Tuple[int, int]
    from_shape: int
    to_shape: int
    frames: int

    @property
    def changed_shape(self) -> bool:
        return self.from_shape != self.to_shape


@dataclass
class DefragResult:
    """Outcome of a defragmentation pass."""

    result: PlacementResult
    moves: List[Move] = field(default_factory=list)
    initial_extent: int = 0
    final_extent: int = 0

    @property
    def total_frames(self) -> int:
        return sum(m.frames for m in self.moves)

    @property
    def improvement(self) -> int:
        return self.initial_extent - self.final_extent


def defragment(
    result: PlacementResult,
    allow_shape_change: bool = False,
    max_moves: Optional[int] = None,
) -> DefragResult:
    """Greedy left-compaction of a placed system.

    Returns a new :class:`PlacementResult` (the input is not modified)
    plus the move list with per-move reconfiguration frame costs.
    ``max_moves`` is a hard cap on executed relocations; when None an
    internal termination guard bounds the pass instead.
    """
    placements = list(result.placements)
    current = PlacementResult(result.region, placements, list(result.unplaced))
    initial_extent = current.extent or 0
    moves: List[Move] = []
    # one unified move budget, checked in one place: the explicit cap, or
    # a termination guard — shape-changing moves may trade width for x,
    # so bound the pass length instead of relying on a monotone metric
    budget = max_moves if max_moves is not None else 4 * max(1, len(placements))

    # each loop iteration executes at most one move (frontier OR squeeze),
    # so this single guard caps both phases consistently
    while len(moves) < budget:
        extent = max((p.right for p in placements), default=0)
        frontier = [
            (i, p) for i, p in enumerate(placements) if p.right == extent
        ]
        moved = False
        for i, p in sorted(frontier, key=lambda t: -t[1].footprint.area):
            sites = relocation_sites(
                current, p, consider_alternatives=allow_shape_change
            )
            # only strictly-left-shrinking targets count as compaction
            better = [
                s
                for s in sites
                if s.x + p.module.shapes[s.shape_index].width < p.right
            ]
            if not better:
                continue
            target = min(better, key=lambda s: (s.x, s.y, s.shape_index))
            new_p = Placement(p.module, target.shape_index, target.x, target.y)
            moves.append(
                Move(
                    module=p.module.name,
                    from_pos=(p.x, p.y),
                    to_pos=(target.x, target.y),
                    from_shape=p.shape_index,
                    to_shape=target.shape_index,
                    frames=relocation_distance(p, target),
                )
            )
            placements[i] = new_p
            current = PlacementResult(
                result.region, placements, list(result.unplaced)
            )
            moved = True
            break
        if not moved:
            # the frontier is stuck: squeeze interior modules left to open
            # space (in x order), then retry; stop when nothing moves at all
            for i, p in sorted(enumerate(placements), key=lambda t: t[1].x):
                sites = relocation_sites(
                    current, p, consider_alternatives=allow_shape_change
                )
                better = [s for s in sites if (s.x, s.y) < (p.x, p.y)]
                if not better:
                    continue
                target = min(better, key=lambda s: (s.x, s.y, s.shape_index))
                new_p = Placement(
                    p.module, target.shape_index, target.x, target.y
                )
                moves.append(
                    Move(
                        module=p.module.name,
                        from_pos=(p.x, p.y),
                        to_pos=(target.x, target.y),
                        from_shape=p.shape_index,
                        to_shape=target.shape_index,
                        frames=relocation_distance(p, target),
                    )
                )
                placements[i] = new_p
                current = PlacementResult(
                    result.region, placements, list(result.unplaced)
                )
                moved = True
                break
        if not moved:
            break

    final = PlacementResult(result.region, placements, list(result.unplaced))
    return DefragResult(
        result=final,
        moves=moves,
        initial_extent=initial_extent,
        final_extent=final.extent or 0,
    )

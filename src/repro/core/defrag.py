"""Runtime defragmentation: instant repacking and no-break move planning.

The runtime counterpart of the paper's offline result: as modules come and
go, the free space of a runtime reconfigurable system shatters (external
fragmentation).  A defragmenter relocates placed modules — at a
reconfiguration cost — to compact the floorplan.  Design alternatives pay
off a second time here: a module that may change layout when moved has
more relocation sites, so compaction gets further per move.

We deliberately keep the paper's restriction in mind: "restoring the
module with a different design alternative would present a problem in
restoring the state.  Consequently, we do not consider changing design
alternatives at run-time."  Every defragmenter therefore supports both
policies:

* ``allow_shape_change=False`` (the paper's stateful-module assumption) —
  modules only translate;
* ``allow_shape_change=True`` (valid for stateless/restartable modules) —
  relocation may pick a different alternative.

Two engines live behind a name-keyed registry
(:func:`register_defragmenter` / :func:`create_defragmenter`, mirroring
the backend and router registries):

* ``greedy-compaction`` — the original *instant* pass wrapped as a
  planner: :func:`defragment` teleports modules atomically and reports
  per-move frame costs without scheduling them.  It stays registered as
  the oracle the incremental engine is differential-tested against.
* ``no-break`` — plans move *sequences* that respect running modules,
  after van der Veen et al. ("Defragmenting the Module Layout of a
  Partially Reconfigurable Device") and Fekete et al. ("No-Break Dynamic
  Defragmentation of Reconfigurable Devices").  A module may only
  **slide** through currently-free space (an axis-aligned glide whose
  every intermediate anchor is a feasible free anchor), or **copy** to a
  disjoint free site and switch over.  Either way the move costs
  reconfiguration frames derived from :func:`~repro.core.relocation.relocation_distance`
  (the distinct columns the move touches), and during its move window
  the module occupies *both* source and target (plus, for a slide, every
  cell glided over) — the cells a mover holds are not obstacle-free for
  admission or for later moves.  The runtime manager executes the plan
  incrementally on its logical clock between arrivals
  (:mod:`repro.core.runtime`).

Both engines run their relocation-site probes through a shared
:class:`~repro.fabric.cache.AnchorMaskCache` when one is supplied — the
defrag pass is the hottest mask consumer on the serving path.

Shared algorithm skeleton: greedy left-compaction.  Repeatedly take the
module whose right edge defines the extent, enumerate its relocation
sites strictly left of its current anchor, move it to the
bottom-left-most feasible one; when the frontier is stuck, squeeze
interior modules left (never past the current extent — a squeeze move
may change shape, and an unguarded wider alternative could *grow* the
floorplan); stop when no module can move or the move budget is
exhausted.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from repro.core.relocation import (
    RelocationSite,
    relocation_distance,
    relocation_sites,
)
from repro.core.result import Placement, PlacementResult
from repro.fabric.cache import AnchorMaskCache


@dataclass
class Move:
    """One executed relocation (instant engine)."""

    module: str
    from_pos: Tuple[int, int]
    to_pos: Tuple[int, int]
    from_shape: int
    to_shape: int
    frames: int

    @property
    def changed_shape(self) -> bool:
        return self.from_shape != self.to_shape


@dataclass
class DefragResult:
    """Outcome of an instant defragmentation pass."""

    result: PlacementResult
    moves: List[Move] = field(default_factory=list)
    initial_extent: int = 0
    final_extent: int = 0

    @property
    def total_frames(self) -> int:
        return sum(m.frames for m in self.moves)

    @property
    def improvement(self) -> int:
        return self.initial_extent - self.final_extent


def defragment(
    result: PlacementResult,
    allow_shape_change: bool = False,
    max_moves: Optional[int] = None,
    cache: Optional[AnchorMaskCache] = None,
) -> DefragResult:
    """Greedy left-compaction of a placed system (instant moves).

    Returns a new :class:`PlacementResult` (the input is not modified)
    plus the move list with per-move reconfiguration frame costs.
    ``max_moves`` is a hard cap on executed relocations; when None an
    internal termination guard bounds the pass instead.  ``cache``
    serves the relocation-site masks (see
    :func:`~repro.core.relocation.relocation_sites`).

    A pass never returns a worse floorplan: frontier moves strictly
    shrink the mover's right edge, and squeeze moves are capped at the
    current extent — without that cap a lexicographically-smaller anchor
    of a *wider* design alternative could grow the extent (a real
    regression, pinned by the tests).
    """
    placements = list(result.placements)
    current = PlacementResult(result.region, placements, list(result.unplaced))
    initial_extent = current.extent or 0
    moves: List[Move] = []
    # one unified move budget, checked in one place: the explicit cap, or
    # a termination guard — shape-changing moves may trade width for x,
    # so bound the pass length instead of relying on a monotone metric
    budget = max_moves if max_moves is not None else 4 * max(1, len(placements))

    # each loop iteration executes at most one move (frontier OR squeeze),
    # so this single guard caps both phases consistently
    while len(moves) < budget:
        extent = max((p.right for p in placements), default=0)
        frontier = [
            (i, p) for i, p in enumerate(placements) if p.right == extent
        ]
        moved = False
        for i, p in sorted(frontier, key=lambda t: -t[1].footprint.area):
            sites = relocation_sites(
                current, p, consider_alternatives=allow_shape_change,
                cache=cache,
            )
            # only strictly-left-shrinking targets count as compaction
            better = [
                s
                for s in sites
                if s.x + p.module.shapes[s.shape_index].width < p.right
            ]
            if not better:
                continue
            target = min(better, key=lambda s: (s.x, s.y, s.shape_index))
            new_p = Placement(p.module, target.shape_index, target.x, target.y)
            moves.append(
                Move(
                    module=p.module.name,
                    from_pos=(p.x, p.y),
                    to_pos=(target.x, target.y),
                    from_shape=p.shape_index,
                    to_shape=target.shape_index,
                    frames=relocation_distance(p, target),
                )
            )
            placements[i] = new_p
            current = PlacementResult(
                result.region, placements, list(result.unplaced)
            )
            moved = True
            break
        if not moved:
            # the frontier is stuck: squeeze interior modules left to open
            # space (in x order), then retry; stop when nothing moves at all
            for i, p in sorted(enumerate(placements), key=lambda t: t[1].x):
                sites = relocation_sites(
                    current, p, consider_alternatives=allow_shape_change,
                    cache=cache,
                )
                # a squeeze move may pick a different (wider) alternative:
                # cap its right edge at the current extent so the pass can
                # never worsen the floorplan it was asked to compact
                better = [
                    s
                    for s in sites
                    if (s.x, s.y) < (p.x, p.y)
                    and s.x + p.module.shapes[s.shape_index].width <= extent
                ]
                if not better:
                    continue
                target = min(better, key=lambda s: (s.x, s.y, s.shape_index))
                new_p = Placement(
                    p.module, target.shape_index, target.x, target.y
                )
                moves.append(
                    Move(
                        module=p.module.name,
                        from_pos=(p.x, p.y),
                        to_pos=(target.x, target.y),
                        from_shape=p.shape_index,
                        to_shape=target.shape_index,
                        frames=relocation_distance(p, target),
                    )
                )
                placements[i] = new_p
                current = PlacementResult(
                    result.region, placements, list(result.unplaced)
                )
                moved = True
                break
        if not moved:
            break

    final = PlacementResult(result.region, placements, list(result.unplaced))
    return DefragResult(
        result=final,
        moves=moves,
        initial_extent=initial_extent,
        final_extent=final.extent or 0,
    )


# ----------------------------------------------------------------------
# Planned (no-break) moves
# ----------------------------------------------------------------------
#: move kinds a plan may contain
MOVE_INSTANT = "instant"  # teleport (oracle engine only)
MOVE_SLIDE = "slide"      # glide through free space, same shape
MOVE_COPY = "copy"        # copy-then-switch to a disjoint free site


@dataclass(frozen=True)
class PlannedMove:
    """One scheduled relocation with its move-window footprint.

    ``window_cells`` are the cells the module holds for the whole move
    window: source ∪ target for a copy, the union of every intermediate
    footprint for a slide, empty for an instant (teleport) move.  The
    runtime manager imprints them into its occupancy while the move is
    in flight, so no admission or later move can claim them.
    """

    module: str
    from_shape: int
    from_pos: Tuple[int, int]
    to_shape: int
    to_pos: Tuple[int, int]
    #: one of ``instant`` / ``slide`` / ``copy``
    kind: str
    #: reconfiguration frames the move costs (distinct columns touched)
    frames: int
    window_cells: Tuple[Tuple[int, int], ...] = ()

    @property
    def changed_shape(self) -> bool:
        return self.from_shape != self.to_shape


@dataclass
class DefragPlan:
    """A defragmenter's answer: the move sequence and its end state.

    ``instant`` plans (the ``greedy-compaction`` oracle) are applied
    atomically by the runtime manager, exactly like the original pass;
    incremental plans are executed move by move on the logical clock.
    ``result`` is the *simulated* end state assuming every move executes
    — the live outcome may fall short when moves are aborted by
    interleaved arrivals.
    """

    result: PlacementResult
    moves: List[PlannedMove] = field(default_factory=list)
    initial_extent: int = 0
    final_extent: int = 0
    instant: bool = False

    @property
    def total_frames(self) -> int:
        return sum(m.frames for m in self.moves)

    @property
    def improvement(self) -> int:
        return self.initial_extent - self.final_extent


def plan_states(
    result: PlacementResult, plan: DefragPlan
) -> Iterator[PlacementResult]:
    """Every intermediate floorplan state of ``plan``, for verification.

    Replays the plan step by step from ``result``: a slide yields one
    state per intermediate anchor, a copy yields the double-occupancy
    state (the mover placed at source *and* target simultaneously — the
    no-break invariant is that this state is overlap-free), and every
    move yields the state after it completes.  Feed each state to
    :meth:`PlacementResult.verify` to prove no plan step ever overlaps a
    running module.
    """
    placements: Dict[str, Placement] = {
        p.module.name: p for p in result.placements
    }

    def state(extra: List[Placement] = []) -> PlacementResult:
        return PlacementResult(
            result.region, list(placements.values()) + extra
        )

    for move in plan.moves:
        p = placements[move.module]
        target = Placement(p.module, move.to_shape, *move.to_pos)
        if move.kind == MOVE_SLIDE:
            for x, y in _slide_anchors(p, move.to_pos):
                placements[move.module] = Placement(
                    p.module, move.to_shape, x, y
                )
                yield state()
        elif move.kind == MOVE_COPY:
            # copy-then-switch: source and target coexist for the window
            del placements[move.module]
            yield state(extra=[p, target])
        placements[move.module] = target
        yield state()


def _slide_anchors(
    placement: Placement, to_pos: Tuple[int, int]
) -> Iterator[Tuple[int, int]]:
    """Anchor path of an axis-aligned glide, source exclusive."""
    x, y = placement.x, placement.y
    tx, ty = to_pos
    dx = 0 if tx == x else (1 if tx > x else -1)
    dy = 0 if ty == y else (1 if ty > y else -1)
    while (x, y) != (tx, ty):
        x, y = x + dx, y + dy
        yield x, y


# ----------------------------------------------------------------------
# Defragmenter protocol and registry (mirrors backends and routers)
# ----------------------------------------------------------------------
class Defragmenter:
    """Plans one defragmentation pass over a live floorplan.

    Planners are pure: they never mutate the input result.  ``instant``
    engines teleport (their moves carry no window and the runtime
    manager applies the end state atomically); incremental engines
    return windowed move sequences the manager schedules on its logical
    clock.
    """

    name = "defragmenter"
    #: True = the plan is applied atomically (the pre-no-break behavior)
    instant = True

    def plan(
        self,
        result: PlacementResult,
        allow_shape_change: bool = False,
        max_moves: Optional[int] = None,
        cache: Optional[AnchorMaskCache] = None,
    ) -> DefragPlan:
        raise NotImplementedError


class GreedyCompactionDefragmenter(Defragmenter):
    """The original instant pass, wrapped as a planner (the oracle)."""

    name = "greedy-compaction"
    instant = True

    def plan(
        self,
        result: PlacementResult,
        allow_shape_change: bool = False,
        max_moves: Optional[int] = None,
        cache: Optional[AnchorMaskCache] = None,
    ) -> DefragPlan:
        out = defragment(
            result,
            allow_shape_change=allow_shape_change,
            max_moves=max_moves,
            cache=cache,
        )
        moves = [
            PlannedMove(
                module=m.module,
                from_shape=m.from_shape,
                from_pos=m.from_pos,
                to_shape=m.to_shape,
                to_pos=m.to_pos,
                kind=MOVE_INSTANT,
                frames=m.frames,
            )
            for m in out.moves
        ]
        return DefragPlan(
            result=out.result,
            moves=moves,
            initial_extent=out.initial_extent,
            final_extent=out.final_extent,
            instant=True,
        )


class NoBreakDefragmenter(Defragmenter):
    """Greedy left-compaction as a no-break move sequence.

    Same skeleton as the oracle, but every move must be *executable
    against running modules*: a slide needs a free glide path, a copy
    needs a target disjoint from its own source (the module occupies
    both for the move window).  The plan simulates each move before
    appending the next, so move ``k`` is feasible in the state left by
    moves ``0..k-1`` — the runtime manager re-validates each move at
    start time anyway, because arrivals interleave with execution.
    """

    name = "no-break"
    instant = False

    def plan(
        self,
        result: PlacementResult,
        allow_shape_change: bool = False,
        max_moves: Optional[int] = None,
        cache: Optional[AnchorMaskCache] = None,
    ) -> DefragPlan:
        placements = list(result.placements)
        current = PlacementResult(
            result.region, placements, list(result.unplaced)
        )
        initial_extent = current.extent or 0
        moves: List[PlannedMove] = []
        budget = (
            max_moves if max_moves is not None
            else 4 * max(1, len(placements))
        )

        while len(moves) < budget:
            extent = max((p.right for p in placements), default=0)
            frontier = [
                (i, p) for i, p in enumerate(placements) if p.right == extent
            ]
            planned = None
            for i, p in sorted(frontier, key=lambda t: -t[1].footprint.area):
                sites = relocation_sites(
                    current, p, consider_alternatives=allow_shape_change,
                    cache=cache,
                )
                better = [
                    s
                    for s in sites
                    if s.x + p.module.shapes[s.shape_index].width < p.right
                ]
                planned = self._first_feasible(p, better, sites)
                if planned is not None:
                    planned = (i, planned)
                    break
            if planned is None:
                for i, p in sorted(enumerate(placements), key=lambda t: t[1].x):
                    sites = relocation_sites(
                        current, p,
                        consider_alternatives=allow_shape_change,
                        cache=cache,
                    )
                    # same extent cap as the instant squeeze phase: a
                    # wider alternative must never grow the floorplan
                    better = [
                        s
                        for s in sites
                        if (s.x, s.y) < (p.x, p.y)
                        and s.x + p.module.shapes[s.shape_index].width
                        <= extent
                    ]
                    planned = self._first_feasible(p, better, sites)
                    if planned is not None:
                        planned = (i, planned)
                        break
            if planned is None:
                break
            i, move = planned
            moves.append(move)
            placements[i] = Placement(
                placements[i].module, move.to_shape, *move.to_pos
            )
            current = PlacementResult(
                result.region, placements, list(result.unplaced)
            )

        final = PlacementResult(
            result.region, placements, list(result.unplaced)
        )
        return DefragPlan(
            result=final,
            moves=moves,
            initial_extent=initial_extent,
            final_extent=final.extent or 0,
            instant=False,
        )

    # ------------------------------------------------------------------
    def _first_feasible(
        self,
        placement: Placement,
        candidates: List[RelocationSite],
        sites: List[RelocationSite],
    ) -> Optional[PlannedMove]:
        """Bottom-left-most candidate reachable no-break, or None."""
        site_set = {(s.shape_index, s.x, s.y) for s in sites}
        for site in sorted(
            candidates, key=lambda s: (s.x, s.y, s.shape_index)
        ):
            move = self._plan_move(placement, site, site_set)
            if move is not None:
                return move
        return None

    def _plan_move(
        self,
        placement: Placement,
        site: RelocationSite,
        site_set: set,
    ) -> Optional[PlannedMove]:
        """One candidate site as a slide or copy move (None = unreachable)."""
        source_cells = {(x, y) for x, y, _ in placement.absolute_cells()}
        fp = placement.module.shapes[site.shape_index]
        target_cells = {
            (site.x + dx, site.y + dy) for dx, dy, _ in fp.cells
        }
        slide = (
            site.shape_index == placement.shape_index
            and (site.x == placement.x or site.y == placement.y)
        )
        if slide:
            window = set(source_cells)
            feasible = True
            for x, y in _slide_anchors(placement, (site.x, site.y)):
                if (site.shape_index, x, y) not in site_set:
                    feasible = False
                    break
                window |= {(x + dx, y + dy) for dx, dy, _ in fp.cells}
            if feasible:
                # a glide rewrites every column it passes through, not
                # just the endpoints relocation_distance sees
                frames = len({x for x, _ in window})
                return PlannedMove(
                    module=placement.module.name,
                    from_shape=placement.shape_index,
                    from_pos=(placement.x, placement.y),
                    to_shape=site.shape_index,
                    to_pos=(site.x, site.y),
                    kind=MOVE_SLIDE,
                    frames=frames,
                    window_cells=tuple(sorted(window)),
                )
            # an infeasible glide may still be reachable as a copy
        if not target_cells.isdisjoint(source_cells):
            # copy-then-switch needs both footprints live at once
            return None
        return PlannedMove(
            module=placement.module.name,
            from_shape=placement.shape_index,
            from_pos=(placement.x, placement.y),
            to_shape=site.shape_index,
            to_pos=(site.x, site.y),
            kind=MOVE_COPY,
            frames=relocation_distance(placement, site),
            window_cells=tuple(sorted(source_cells | target_cells)),
        )


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
#: factory signature: ``factory() -> Defragmenter``
DefragmenterFactory = Callable[[], Defragmenter]

_DEFRAGMENTERS: Dict[str, DefragmenterFactory] = {}


def register_defragmenter(
    name: str, factory: DefragmenterFactory, *, replace: bool = False
) -> None:
    """Register a defragmenter factory under ``name`` (loud on duplicates)."""
    if not name or not isinstance(name, str):
        raise ValueError(
            f"defragmenter name must be a non-empty string, got {name!r}"
        )
    if not replace and name in _DEFRAGMENTERS:
        raise ValueError(
            f"defragmenter {name!r} is already registered; pass replace=True "
            f"to override it deliberately"
        )
    _DEFRAGMENTERS[name] = factory


def unregister_defragmenter(name: str) -> None:
    """Remove a registered defragmenter (primarily for tests)."""
    _DEFRAGMENTERS.pop(name, None)


def create_defragmenter(name: str) -> Defragmenter:
    """Instantiate the registered defragmenter ``name`` (loud when unknown)."""
    try:
        factory = _DEFRAGMENTERS[name]
    except KeyError:
        known = ", ".join(sorted(_DEFRAGMENTERS)) or "<none>"
        raise ValueError(
            f"unknown defragmenter {name!r}; registered: {known}"
        ) from None
    return factory()


def available_defragmenters() -> List[str]:
    """Sorted names of every registered defragmentation strategy."""
    return sorted(_DEFRAGMENTERS)


for _cls in (GreedyCompactionDefragmenter, NoBreakDefragmenter):
    register_defragmenter(_cls.name, _cls)

"""Parallel portfolio placement.

Packing search has a heavy-tailed runtime/quality distribution: different
random seeds explore very different regions.  A *portfolio* runs several
independent placement backends (all-LNS by default; any registered
backend names via ``PortfolioConfig.members``) in parallel worker
processes and keeps the best incumbent — near-linear
quality-per-wall-clock scaling for free, and the natural way to use a
multi-core workstation for the paper's workload.

Implementation notes (per the HPC guides, keep the parallel layer thin
and the data exchange explicit): workers receive only JSON-serializable
payloads (region spec + module specs + scalar knobs) and return plain
tuples.  Nothing solver-internal crosses the process boundary, which keeps
the workers independent and the results deterministic per (seed, budget).
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.result import Placement, PlacementResult
from repro.fabric.io import region_from_dict, region_to_dict
from repro.fabric.region import PartialRegion
from repro.modules.module import Module
from repro.modules.spec import module_from_dict, module_to_dict
from repro.obs.profile import SolveProfile
from repro.obs.trace import PORTFOLIO_RESULT, Tracer

#: (module name, shape index, x, y)
_PlacementTuple = Tuple[str, int, int, int]

#: (seed, extent-or-None, placements, profile-dict-or-None) — the profile
#: crosses the process boundary as a plain dict (JSON-serializable), never
#: as a solver-internal object
_WorkerResult = Tuple[int, Optional[int], List[_PlacementTuple], Optional[dict]]


def _worker(
    region_payload: dict,
    module_payloads: List[dict],
    time_limit: float,
    seed: int,
    profile: bool = False,
    backend: str = "lns",
    incremental: bool = True,
    bitboard: bool = True,
) -> _WorkerResult:
    """Solve one portfolio member; returns (seed, extent, placements, profile)."""
    # lazy import: the backend package imports this module for its adapter
    from repro.core.backend import PlacementRequest, create_backend
    from repro.core.backend.worker import process_cache

    region = region_from_dict(region_payload)
    modules = [module_from_dict(p) for p in module_payloads]
    # the process-resident anchor-mask cache, warmed once per (region,
    # library): the initial solve and every LNS subproblem of this member
    # run on hits only, and a worker process that outlives this call —
    # the inline n_workers==1 path, or a long-lived pool — reuses the
    # warmed entries on its next solve instead of re-deriving them
    cache = process_cache("portfolio")
    cache.warm(region, modules)
    result = create_backend(backend).place(
        PlacementRequest(
            region,
            modules,
            seed=seed,
            time_limit=time_limit,
            profile=profile,
            cache=cache,
            incremental=incremental,
            bitboard=bitboard,
        )
    )
    profile_payload = None
    if profile:
        captured = result.stats.get("profile")
        if captured is not None:
            profile_payload = captured.to_dict()
    if not result.placements or not result.all_placed:
        return seed, None, [], profile_payload
    return (
        seed,
        result.extent,
        [
            (p.module.name, p.shape_index, p.x, p.y)
            for p in result.placements
        ],
        profile_payload,
    )


@dataclass
class PortfolioConfig:
    """Knobs of the parallel portfolio."""

    #: independent members (= worker processes)
    n_workers: int = 4
    #: per-member wall-clock budget in seconds
    time_limit: float = 8.0
    base_seed: int = 0
    #: registered backend names cycled across the workers (worker k runs
    #: ``members[k % len(members)]``); None = all-LNS, today's default
    members: Optional[Sequence[str]] = None
    #: collect per-member SolveProfiles (returned across the process
    #: boundary as plain dicts) and merge them into ``stats["profile"]``
    profile: bool = False
    #: event sink for ``portfolio.result`` events (parent process only —
    #: tracers do not cross into workers)
    tracer: Optional[Tracer] = None
    #: incremental geost propagation inside every member's CP solves;
    #: False = wholesale re-filtering (the differential oracle mode)
    incremental: bool = True
    #: bitboard-first vectorized sweep inside every member's CP solves;
    #: False = the per-shape scalar oracle path
    bitboard: bool = True


class PortfolioPlacer:
    """Best-of-N parallel placement over registered backends (default LNS)."""

    def __init__(self, config: Optional[PortfolioConfig] = None) -> None:
        self.config = config or PortfolioConfig()
        if self.config.n_workers < 1:
            raise ValueError("need at least one worker")
        if self.config.members is not None:
            from repro.core.backend import available_backends

            if not self.config.members:
                raise ValueError("members must name at least one backend")
            registered = set(available_backends())
            for name in self.config.members:
                if name not in registered:
                    raise ValueError(
                        f"unknown backend {name!r} in portfolio members; "
                        f"registered: {', '.join(sorted(registered))}"
                    )

    def _member_names(self) -> List[str]:
        cfg = self.config
        names = list(cfg.members) if cfg.members is not None else ["lns"]
        return [names[k % len(names)] for k in range(cfg.n_workers)]

    def place(
        self, region: PartialRegion, modules: Sequence[Module]
    ) -> PlacementResult:
        cfg = self.config
        start = time.monotonic()
        region_payload = region_to_dict(region)
        module_payloads = [module_to_dict(m) for m in modules]
        by_name: Dict[str, Module] = {m.name: m for m in modules}
        tracer = (
            cfg.tracer if cfg.tracer is not None and cfg.tracer.enabled else None
        )

        member_names = self._member_names()
        outcomes: List[_WorkerResult] = []
        crashed: Dict[int, str] = {}

        def record_crash(seed: int, exc: BaseException) -> None:
            # keep the member's real seed and its exception text; a crash
            # is an unsolved outcome, never a silently healthy member
            crashed[seed] = f"{type(exc).__name__}: {exc}"
            outcomes.append((seed, None, [], None))

        if cfg.n_workers == 1:
            try:
                outcomes.append(
                    _worker(region_payload, module_payloads, cfg.time_limit,
                            cfg.base_seed, cfg.profile, member_names[0],
                            cfg.incremental, cfg.bitboard)
                )
            except Exception as exc:
                record_crash(cfg.base_seed, exc)
        else:
            with ProcessPoolExecutor(max_workers=cfg.n_workers) as pool:
                futures = {
                    pool.submit(
                        _worker,
                        region_payload,
                        module_payloads,
                        cfg.time_limit,
                        cfg.base_seed + k,
                        cfg.profile,
                        member_names[k],
                        cfg.incremental,
                        cfg.bitboard,
                    ): cfg.base_seed + k
                    for k in range(cfg.n_workers)
                }
                for fut in as_completed(futures):
                    try:
                        outcomes.append(fut.result())
                    except Exception as exc:  # must not sink the rest
                        record_crash(futures[fut], exc)

        backend_by_seed = {
            cfg.base_seed + k: member_names[k] for k in range(cfg.n_workers)
        }
        if tracer is not None:
            for seed, extent, _tuples, _prof in outcomes:
                payload = dict(
                    seed=seed, extent=extent, solved=extent is not None,
                    backend=backend_by_seed.get(seed, "lns"),
                )
                if seed in crashed:
                    payload["error"] = crashed[seed]
                tracer.emit(PORTFOLIO_RESULT, **payload)

        stats: Dict = {
            "method": "portfolio",
            "members": len(outcomes),
            "member_backends": member_names,
            "crashed_members": dict(crashed),
        }
        if cfg.profile:
            member_profiles = {
                seed: prof
                for seed, _e, _t, prof in outcomes
                if prof is not None
            }
            stats["member_profiles"] = member_profiles
            merged = SolveProfile(meta={"placer": "portfolio"})
            for prof in member_profiles.values():
                merged = merged + SolveProfile.from_dict(prof)
            stats["profile"] = merged

        solved = [(s, e, p) for s, e, p, _ in outcomes if e is not None]
        elapsed = time.monotonic() - start
        if not solved:
            stats["status_members"] = 0
            return PlacementResult(
                region, [], list(modules), status="unknown", elapsed=elapsed,
                stats=stats,
            )
        best_seed, best_extent, tuples = min(solved, key=lambda t: t[1])
        placements = [
            Placement(by_name[name], sid, x, y)
            for name, sid, x, y in tuples
        ]
        stats.update(
            solved_members=len(solved),
            winning_seed=best_seed,
            member_extents=sorted(e for _, e, _ in solved),
        )
        return PlacementResult(
            region,
            placements,
            [],
            extent=best_extent,
            status="feasible",
            elapsed=elapsed,
            stats=stats,
        )

"""Module relocatability analysis.

Related work [9] (Becker, Luk, Cheung: "Enhancing Relocatability of
Partial Bitstreams for Run-Time Reconfiguration") studies where a placed
module's bitstream can be *relocated* — re-placed without re-routing.  On
a heterogeneous fabric a module can only move to anchors whose underlying
resource pattern matches its footprint exactly, which is the same
compatibility computation our kernel uses for placement.

This module quantifies relocatability for placed systems:

* :func:`relocation_sites` — all anchors a placed module could move to
  right now (resource-compatible, inside the region, free);
* :func:`relocatability_report` — per-module site counts, with and without
  considering the module's design alternatives;
* :func:`relocation_distance` — frame-count cost of a relocation (columns
  the move touches), the reconfiguration-time proxy used by the flow's
  bitstream model.

Design alternatives matter here too: a module with several layouts has a
superset of relocation sites, so runtime defragmentation
(:mod:`repro.core.defrag`) gets more freedom — the runtime counterpart of
the paper's offline utilization result.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.result import Placement, PlacementResult
from repro.fabric.cache import AnchorMaskCache
from repro.fabric.masks import compatibility_masks, valid_anchor_mask
from repro.fabric.region import PartialRegion


@dataclass(frozen=True)
class RelocationSite:
    """A feasible relocation target for a placed module."""

    shape_index: int
    x: int
    y: int

    @property
    def anchor(self) -> Tuple[int, int]:
        return self.x, self.y


def _free_mask_excluding(result: PlacementResult, who: Placement) -> np.ndarray:
    """Region cells free if ``who`` were lifted off the fabric."""
    occupied = result.occupancy_mask()
    for x, y, _ in who.absolute_cells():
        occupied[y, x] = False
    return result.region.allowed_mask() & ~occupied


def relocation_sites(
    result: PlacementResult,
    placement: Placement,
    consider_alternatives: bool = True,
    cache: Optional[AnchorMaskCache] = None,
) -> List[RelocationSite]:
    """All anchors ``placement``'s module could occupy instead.

    The module itself is lifted first (its own cells count as free), so
    the current position is always among the sites of its current shape.

    ``cache`` routes the mask computation through a shared
    :class:`~repro.fabric.cache.AnchorMaskCache`, keyed on the content
    fingerprint of the lifted-module free mask — defrag passes probe the
    same residual floorplan for every candidate module/shape, so the
    per-region compatibility planes and repeated (region, footprint)
    lookups are served from cache instead of re-derived per call.  The
    cached and uncached paths are bit-identical (pinned by the
    differential suite).
    """
    region = result.region
    free = _free_mask_excluding(result, placement)
    sub_region = PartialRegion(region.grid, free & region.reconfigurable)
    shapes = (
        list(enumerate(placement.module.shapes))
        if consider_alternatives
        else [(placement.shape_index, placement.footprint)]
    )
    if cache is not None:
        region_key = cache.region_key(sub_region)
        masks = [
            (sid, cache.anchor_mask(sub_region, fp, region_key=region_key))
            for sid, fp in shapes
        ]
    else:
        compat = compatibility_masks(sub_region)
        masks = [
            (sid, valid_anchor_mask(sub_region, sorted(fp.cells), compat))
            for sid, fp in shapes
        ]
    sites: List[RelocationSite] = []
    for sid, mask in masks:
        ys, xs = np.nonzero(mask)
        sites.extend(
            RelocationSite(sid, int(x), int(y))
            for x, y in zip(xs.tolist(), ys.tolist())
        )
    return sites


def relocation_distance(placement: Placement, site: RelocationSite) -> int:
    """Reconfiguration cost of the move, in configuration frames.

    Column-oriented devices rewrite whole frames: the cost is the number
    of distinct columns the old and new footprints touch.
    """
    old_cols = {placement.x + dx for dx, _, _ in placement.footprint.cells}
    fp = placement.module.shapes[site.shape_index]
    new_cols = {site.x + dx for dx, _, _ in fp.cells}
    return len(old_cols | new_cols)


@dataclass
class RelocatabilityRow:
    module: str
    sites_same_shape: int
    sites_with_alternatives: int

    @property
    def gain(self) -> float:
        if self.sites_same_shape == 0:
            return float(self.sites_with_alternatives > 0)
        return self.sites_with_alternatives / self.sites_same_shape


def relocatability_report(result: PlacementResult) -> List[RelocatabilityRow]:
    """Per-module relocation site counts, without vs with alternatives."""
    rows = []
    for p in result.placements:
        same = len(relocation_sites(result, p, consider_alternatives=False))
        full = len(relocation_sites(result, p, consider_alternatives=True))
        rows.append(RelocatabilityRow(p.module.name, same, full))
    return rows


def format_relocatability(rows: List[RelocatabilityRow]) -> str:
    """Tabular rendering of a relocatability report."""
    header = f"{'module':<10} {'sites(1 shape)':>15} {'sites(all)':>11} {'gain':>6}"
    out = [header, "-" * len(header)]
    for r in rows:
        out.append(
            f"{r.module:<10} {r.sites_same_shape:>15} "
            f"{r.sites_with_alternatives:>11} {r.gain:>5.1f}x"
        )
    return "\n".join(out)

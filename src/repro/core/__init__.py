"""The paper's primary contribution: CP placement with design alternatives.

Builds the constraint model of Section III (sets M_a, M_b, M_c and the
disjoint union over modules), solves it as a minimization problem
(Eq. 6: minimal x extent = maximal average resource utilization) with
branch-and-bound, and reports placements.

Entry point: :class:`repro.core.placer.CPPlacer` (or the convenience
function :func:`repro.core.placer.place`).
"""

from repro.core.result import Placement, PlacementResult
from repro.core.placement_model import PlacementModel
from repro.core.objective import ObjectiveKind
from repro.core.placer import CPPlacer, PlacerConfig, place
from repro.core.alternatives import expand_alternatives, legal_rigid_transforms
from repro.core.incremental import IncrementalPlacer
from repro.core.lns import LNSConfig, LNSPlacer
from repro.core.relocation import (
    RelocationSite,
    relocatability_report,
    relocation_sites,
)
from repro.core.defrag import (
    DefragPlan,
    DefragResult,
    Defragmenter,
    GreedyCompactionDefragmenter,
    NoBreakDefragmenter,
    PlannedMove,
    available_defragmenters,
    create_defragmenter,
    defragment,
    plan_states,
    register_defragmenter,
    unregister_defragmenter,
)
from repro.core.comm import CommAwarePlacer, CommConfig, CommResult
from repro.core.portfolio import PortfolioConfig, PortfolioPlacer
from repro.core.region_alloc import (
    AllocationResult,
    allocate_regions,
    minimal_region_width,
)
from repro.core.temporal import (
    ScheduledTask,
    TemporalCPPlacer,
    TemporalPlacer,
    TemporalResult,
    TemporalTask,
    render_timeline,
)
from repro.core.runtime import (
    RejectReason,
    RequestOutcome,
    Reservation,
    RuntimeConfig,
    RuntimeLog,
    RuntimePlacementManager,
    RuntimeRequest,
    RuntimeStats,
    generate_workload,
)
from repro.core.service import (
    AffinityRouter,
    LeastFragmentedRouter,
    LeastLoadedRouter,
    RoundRobinRouter,
    Router,
    ServiceConfig,
    ServiceLog,
    ShardedPlacementService,
    available_routers,
    create_router,
    register_router,
)
from repro.core.report import placement_report, render_placement

__all__ = [
    "Placement",
    "PlacementResult",
    "PlacementModel",
    "ObjectiveKind",
    "CPPlacer",
    "PlacerConfig",
    "place",
    "expand_alternatives",
    "legal_rigid_transforms",
    "IncrementalPlacer",
    "LNSPlacer",
    "LNSConfig",
    "RelocationSite",
    "relocation_sites",
    "relocatability_report",
    "DefragPlan",
    "DefragResult",
    "Defragmenter",
    "GreedyCompactionDefragmenter",
    "NoBreakDefragmenter",
    "PlannedMove",
    "available_defragmenters",
    "create_defragmenter",
    "defragment",
    "plan_states",
    "register_defragmenter",
    "unregister_defragmenter",
    "CommAwarePlacer",
    "CommConfig",
    "CommResult",
    "PortfolioPlacer",
    "PortfolioConfig",
    "AllocationResult",
    "allocate_regions",
    "minimal_region_width",
    "TemporalPlacer",
    "TemporalCPPlacer",
    "TemporalResult",
    "TemporalTask",
    "ScheduledTask",
    "render_timeline",
    "placement_report",
    "render_placement",
    "RuntimePlacementManager",
    "RuntimeConfig",
    "RuntimeRequest",
    "RequestOutcome",
    "RejectReason",
    "Reservation",
    "RuntimeLog",
    "RuntimeStats",
    "generate_workload",
    "ShardedPlacementService",
    "ServiceConfig",
    "ServiceLog",
    "Router",
    "RoundRobinRouter",
    "LeastLoadedRouter",
    "LeastFragmentedRouter",
    "AffinityRouter",
    "register_router",
    "available_routers",
    "create_router",
]

"""Temporal module placement: time as a third geost dimension.

The related work's exact method for scheduling reconfigurable modules is
Fekete, Köhler & Teich (the paper's ref [6]): treat a module execution as
a *box in (x, y, t)* — its footprint extruded by its duration — and solve
3-D packing with precedence constraints.  Our geost kernel is
k-dimensional and resource-typed, so this drops out naturally:

* each task contributes one 3-D geost object; every design alternative of
  its module becomes a 3-D shape (footprint columns extruded over the
  duration),
* fabric heterogeneity becomes resource-typed forbidden regions spanning
  all of time (a BRAM column is a BRAM column forever),
* precedence ``a before b`` is the arithmetic constraint
  ``t_a + d_a <= t_b``,
* the makespan ``max(t_i + d_i)`` is minimized by branch-and-bound.

Two placers share the model:

* :class:`TemporalPlacer` runs on the *reference* kernel (interval
  sweeps) — exact but slow, the differential oracle.  Keep instances
  small.
* :class:`TemporalCPPlacer` runs on the production
  :class:`~repro.geost.placement.PlacementKernel` with a time axis —
  the vectorized anchor-mask bank extruded over the horizon, static
  masks served from the shared :class:`~repro.fabric.cache.AnchorMaskCache`.
  This is what the ``temporal-cp`` backend and the runtime reservation
  probe use; it is pinned against :class:`TemporalPlacer` on small
  instances.

Both follow :class:`~repro.placer.base.BasePlacer`'s uniform knob
conventions (class-level ``seed`` / ``time_limit``, a cache threaded
through ``place``) so the backend adapter drives them like any other
engine.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cp.bnb import BranchAndBound, Objective
from repro.cp.branching import min_value, smallest_domain
from repro.cp.engine import Inconsistent
from repro.cp.model import Model
from repro.cp.search import SearchLimit
from repro.fabric.cache import AnchorMaskCache, footprint_signature
from repro.fabric.region import PartialRegion
from repro.fabric.resource import ResourceType
from repro.geost.boxes import Box, ShiftedBox
from repro.geost.forbidden import ForbiddenRegion
from repro.geost.kernel import Geost
from repro.geost.objects import GeostObject
from repro.geost.placement import PlacementKernel
from repro.geost.shapes import GeostShape, ShapeTable
from repro.modules.footprint import Footprint
from repro.modules.module import Module


@dataclass(frozen=True)
class TemporalTask:
    """One module execution: which module, for how many time steps."""

    module: Module
    duration: int

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ValueError("task duration must be positive")

    @property
    def name(self) -> str:
        return self.module.name


@dataclass(frozen=True)
class ScheduledTask:
    """A placed-and-scheduled task."""

    task: TemporalTask
    shape_index: int
    x: int
    y: int
    start: int

    @property
    def end(self) -> int:
        return self.start + self.task.duration

    @property
    def footprint(self) -> Footprint:
        return self.task.module.shapes[self.shape_index]

    def cells_at(self, t: int) -> List[Tuple[int, int]]:
        """Fabric cells occupied at time t (empty if not running)."""
        if not self.start <= t < self.end:
            return []
        return [
            (self.x + dx, self.y + dy) for dx, dy, _ in self.footprint.cells
        ]


@dataclass
class TemporalResult:
    """Outcome of temporal placement."""

    region: PartialRegion
    schedule: List[ScheduledTask] = field(default_factory=list)
    makespan: Optional[int] = None
    status: str = "feasible"
    elapsed: float = 0.0

    def verify(self, precedences: Sequence[Tuple[int, int]] = ()) -> None:
        """Check resources, in-region, no spatio-temporal overlap, precedence."""
        allowed = self.region.allowed_mask()
        grid = self.region.grid.cells
        for s in self.schedule:
            for x, y, kind in (
                (self.x_abs(s, dx), self.y_abs(s, dy), k)
                for dx, dy, k in s.footprint.cells
            ):
                if not (0 <= x < self.region.width
                        and 0 <= y < self.region.height) or not allowed[y, x]:
                    raise ValueError(f"{s.task.name}: tile ({x},{y}) invalid")
                if grid[y, x] != int(kind):
                    raise ValueError(
                        f"{s.task.name}: resource mismatch at ({x},{y})"
                    )
        horizon = max((s.end for s in self.schedule), default=0)
        for t in range(horizon):
            seen: Dict[Tuple[int, int], str] = {}
            for s in self.schedule:
                for cell in s.cells_at(t):
                    if cell in seen:
                        raise ValueError(
                            f"t={t}: {s.task.name} overlaps {seen[cell]} at {cell}"
                        )
                    seen[cell] = s.task.name
        for a, b in precedences:
            if self.schedule[a].end > self.schedule[b].start:
                raise ValueError(
                    f"precedence violated: task {a} ends at "
                    f"{self.schedule[a].end}, task {b} starts at "
                    f"{self.schedule[b].start}"
                )

    @staticmethod
    def x_abs(s: ScheduledTask, dx: int) -> int:
        return s.x + dx

    @staticmethod
    def y_abs(s: ScheduledTask, dy: int) -> int:
        return s.y + dy


def _extrude(fp: Footprint, duration: int) -> GeostShape:
    """Footprint -> 3-D shape: each vertical run becomes a (1, run, d) box."""
    flat = GeostShape.from_footprint(fp)
    return GeostShape(
        [
            ShiftedBox(
                (sb.offset[0], sb.offset[1], 0),
                (sb.size[0], sb.size[1], duration),
                sb.resource,
            )
            for sb in flat.boxes
        ]
    )


def _fabric_regions(
    region: PartialRegion, kinds: Sequence[ResourceType], horizon: int
) -> List[ForbiddenRegion]:
    """Heterogeneity as time-invariant resource-typed forbidden columns.

    Also emits the four boundary walls (untyped: they block every box),
    enforcing M_a for shapes whose extent would poke past the fabric —
    anchor-domain clamps alone cannot, because alternatives differ in size.
    """
    out: List[ForbiddenRegion] = []
    allowed = region.allowed_mask()
    grid = region.grid.cells
    for kind in kinds:
        for y in range(region.height):
            for x in range(region.width):
                if not allowed[y, x] or grid[y, x] != int(kind):
                    out.append(
                        ForbiddenRegion(
                            Box((x, y, 0), (1, 1, horizon)), kind
                        )
                    )
    W, H, T = region.width, region.height, horizon
    pad = max(W, H, T) + 2
    out.extend(
        [
            ForbiddenRegion(Box((-pad, -pad, -pad), (pad, 3 * pad, 3 * pad))),
            ForbiddenRegion(Box((W, -pad, -pad), (pad, 3 * pad, 3 * pad))),
            ForbiddenRegion(Box((-pad, -pad, -pad), (3 * pad, pad, 3 * pad))),
            ForbiddenRegion(Box((-pad, H, -pad), (3 * pad, pad, 3 * pad))),
            ForbiddenRegion(Box((-pad, -pad, -pad), (3 * pad, 3 * pad, pad))),
            ForbiddenRegion(Box((-pad, -pad, T), (3 * pad, 3 * pad, pad))),
        ]
    )
    return out


def _validate_temporal(
    tasks: Sequence[TemporalTask], precedences: Sequence[Tuple[int, int]]
) -> None:
    if not tasks:
        raise ValueError("nothing to schedule")
    for a, b in precedences:
        if not (0 <= a < len(tasks) and 0 <= b < len(tasks)) or a == b:
            raise ValueError(f"invalid precedence ({a}, {b})")


class TemporalPlacer:
    """Exact spatio-temporal placement, minimizing the makespan.

    Runs on the reference geost kernel — the differential oracle the
    production :class:`TemporalCPPlacer` is pinned against.  Follows
    :class:`~repro.placer.base.BasePlacer`'s knob conventions: ``seed``
    and ``time_limit`` are uniform attributes the backend adapter
    overrides per request, and an
    :class:`~repro.fabric.cache.AnchorMaskCache` handed to ``place`` (or
    the constructor) memoizes the fabric-content-derived model pieces —
    the per-(region, horizon) forbidden-region list and the
    per-(footprint, duration) shape extrusions — via
    :meth:`~repro.fabric.cache.AnchorMaskCache.memo`.  Cached and
    uncached runs are bit-identical (the memo returns the same objects
    a fresh construction would build), pinned by the counter tests.
    """

    name = "temporal"
    #: uniform knobs (BasePlacer conventions); the reference search is
    #: deterministic, so ``seed`` only exists for the shared surface
    seed: int = 0
    time_limit: Optional[float] = 30.0

    def __init__(
        self,
        horizon: int,
        time_limit: Optional[float] = 30.0,
        seed: int = 0,
        cache: Optional[AnchorMaskCache] = None,
    ) -> None:
        if horizon <= 0:
            raise ValueError("horizon must be positive")
        self.horizon = horizon
        self.time_limit = time_limit
        self.seed = seed
        self.cache = cache

    @staticmethod
    def _extrusion(
        cache: Optional[AnchorMaskCache], fp: Footprint, duration: int
    ) -> GeostShape:
        """The task's 3-D shape, memoized per (footprint, duration)."""
        if cache is None:
            return _extrude(fp, duration)
        return cache.memo(
            ("temporal-extrude", footprint_signature(fp), duration),
            lambda: _extrude(fp, duration),
        )

    def _forbidden(
        self,
        cache: Optional[AnchorMaskCache],
        region: PartialRegion,
        kinds: Sequence[ResourceType],
    ) -> List[ForbiddenRegion]:
        """The fabric's forbidden regions, memoized per (region, horizon)."""
        if cache is None:
            return _fabric_regions(region, kinds, self.horizon)
        return cache.memo(
            (
                "temporal-fabric",
                cache.region_key(region),
                tuple(kinds),
                self.horizon,
            ),
            lambda: _fabric_regions(region, kinds, self.horizon),
        )

    def place(
        self,
        region: PartialRegion,
        tasks: Sequence[TemporalTask],
        precedences: Sequence[Tuple[int, int]] = (),
        *,
        cache: Optional[AnchorMaskCache] = None,
    ) -> TemporalResult:
        _validate_temporal(tasks, precedences)
        cache = cache if cache is not None else self.cache
        start_time = time.monotonic()
        m = Model()
        # deduping table: tasks sharing a module (same footprints, same
        # duration) share shape ids instead of registering copies
        table = ShapeTable(dedupe=True)
        objects: List[GeostObject] = []
        #: per-task shape-id lists — the ONLY valid way to decode a shape
        #: choice back to a module alternative index (ids are shared and
        #: need not form contiguous per-task blocks)
        task_sids: List[List[int]] = []
        ends = []
        dv = []
        kinds = sorted(
            {
                k
                for task in tasks
                for fp in task.module.shapes
                for _, _, k in fp.cells
            }
        )
        try:
            for i, task in enumerate(tasks):
                sids = [
                    table.add(self._extrusion(cache, fp, task.duration))
                    for fp in task.module.shapes
                ]
                task_sids.append(sids)
                max_w = max(fp.width for fp in task.module.shapes)
                max_h = max(fp.height for fp in task.module.shapes)
                x = m.int_var(0, max(0, region.width - 1), f"x{i}")
                y = m.int_var(0, max(0, region.height - 1), f"y{i}")
                t = m.int_var(0, self.horizon - task.duration, f"t{i}")
                # exactly the task's shape ids — shared ids leave holes,
                # so a [min, max] interval would admit foreign shapes
                s = m.int_var_from(sorted(set(sids)), f"s{i}")
                objects.append(GeostObject(i, [x, y, t], s, table))
                end = m.int_var(task.duration, self.horizon, f"end{i}")
                m.add_eq(end, t, task.duration)  # end == t + duration
                ends.append(end)
                dv.extend([t, x, y, s])
            for a, b in precedences:
                # t_a + d_a <= t_b
                m.add_le(objects[a].origin[2], objects[b].origin[2],
                         tasks[a].duration)
            m.post(Geost(objects, self._forbidden(cache, region, kinds)))
            makespan = m.int_var(0, self.horizon, "makespan")
            m.add_max(makespan, ends)
        except Inconsistent:
            return TemporalResult(
                region, status="infeasible",
                elapsed=time.monotonic() - start_time,
            )

        bnb = BranchAndBound(
            m.engine,
            Objective.minimize(makespan),
            dv,
            var_select=smallest_domain,
            val_select=min_value,
            limit=SearchLimit(time_seconds=self.time_limit),
        )
        res = bnb.run()
        elapsed = time.monotonic() - start_time
        if res.best is None:
            status = "infeasible" if res.proved_optimal else "unknown"
            return TemporalResult(region, status=status, elapsed=elapsed)
        sol = res.best
        schedule = []
        for i, task in enumerate(tasks):
            # decode via the task's own sid list: offset arithmetic breaks
            # as soon as the table dedupes or ids are non-contiguous
            schedule.append(
                ScheduledTask(
                    task=task,
                    shape_index=task_sids[i].index(sol[f"s{i}"]),
                    x=sol[f"x{i}"],
                    y=sol[f"y{i}"],
                    start=sol[f"t{i}"],
                )
            )
        return TemporalResult(
            region,
            schedule=schedule,
            makespan=res.objective,
            status="optimal" if res.proved_optimal else "feasible",
            elapsed=elapsed,
        )


class TemporalCPPlacer:
    """Spatio-temporal placement on the production anchor-mask kernel.

    The same (x, y, t) model as :class:`TemporalPlacer` — extruded
    footprints, precedence offsets, makespan branch-and-bound with the
    same heuristics — propagated by
    :class:`~repro.geost.placement.PlacementKernel` running with a time
    axis: the vectorized bank algebra instead of the reference interval
    sweeps, with the static spatial masks served from the shared
    :class:`~repro.fabric.cache.AnchorMaskCache`.  Differentially pinned
    against :class:`TemporalPlacer` on small instances (equal optimal
    makespans, schedules that ``verify``).
    """

    name = "temporal-cp"
    seed: int = 0
    time_limit: Optional[float] = 30.0

    def __init__(
        self,
        horizon: int,
        time_limit: Optional[float] = 30.0,
        seed: int = 0,
        cache: Optional[AnchorMaskCache] = None,
        incremental: bool = True,
        bitboard: bool = True,
    ) -> None:
        if horizon <= 0:
            raise ValueError("horizon must be positive")
        self.horizon = horizon
        self.time_limit = time_limit
        self.seed = seed
        self.cache = cache
        self.incremental = incremental
        self.bitboard = bitboard

    def place(
        self,
        region: PartialRegion,
        tasks: Sequence[TemporalTask],
        precedences: Sequence[Tuple[int, int]] = (),
        *,
        cache: Optional[AnchorMaskCache] = None,
    ) -> TemporalResult:
        _validate_temporal(tasks, precedences)
        cache = cache if cache is not None else self.cache
        start_time = time.monotonic()
        m = Model()
        n = len(tasks)
        durations = [task.duration for task in tasks]
        xs = [m.int_var(0, max(0, region.width - 1), f"x{i}") for i in range(n)]
        ys = [m.int_var(0, max(0, region.height - 1), f"y{i}") for i in range(n)]
        ss = [
            m.int_var(0, len(task.module.shapes) - 1, f"s{i}")
            for i, task in enumerate(tasks)
        ]
        ts = [
            m.int_var(0, self.horizon - task.duration, f"t{i}")
            for i, task in enumerate(tasks)
        ]
        ends = []
        dv: List = []
        try:
            for i, task in enumerate(tasks):
                end = m.int_var(task.duration, self.horizon, f"end{i}")
                m.add_eq(end, ts[i], task.duration)  # end == t + duration
                ends.append(end)
                dv.extend([ts[i], xs[i], ys[i], ss[i]])
            for a, b in precedences:
                m.add_le(ts[a], ts[b], durations[a])  # t_a + d_a <= t_b
            m.post(
                PlacementKernel(
                    region,
                    [task.module for task in tasks],
                    xs,
                    ys,
                    ss,
                    cache=cache,
                    incremental=self.incremental,
                    bitboard=self.bitboard,
                    horizon=self.horizon,
                    durations=durations,
                    ts=ts,
                )
            )
            makespan = m.int_var(0, self.horizon, "makespan")
            m.add_max(makespan, ends)
        except Inconsistent:
            return TemporalResult(
                region, status="infeasible",
                elapsed=time.monotonic() - start_time,
            )

        bnb = BranchAndBound(
            m.engine,
            Objective.minimize(makespan),
            dv,
            var_select=smallest_domain,
            val_select=min_value,
            limit=SearchLimit(time_seconds=self.time_limit),
        )
        res = bnb.run()
        elapsed = time.monotonic() - start_time
        if res.best is None:
            status = "infeasible" if res.proved_optimal else "unknown"
            return TemporalResult(region, status=status, elapsed=elapsed)
        sol = res.best
        schedule = [
            ScheduledTask(
                task=task,
                shape_index=sol[f"s{i}"],
                x=sol[f"x{i}"],
                y=sol[f"y{i}"],
                start=sol[f"t{i}"],
            )
            for i, task in enumerate(tasks)
        ]
        return TemporalResult(
            region,
            schedule=schedule,
            makespan=res.objective,
            status="optimal" if res.proved_optimal else "feasible",
            elapsed=elapsed,
        )


def render_timeline(result: TemporalResult) -> str:
    """One fabric snapshot per time step, tasks drawn 0..9a..z."""
    if not result.schedule:
        return "(empty schedule)"
    horizon = max(s.end for s in result.schedule)
    chars = "0123456789abcdefghijklmnopqrstuvwxyz"
    blocks = []
    region = result.region
    for t in range(horizon):
        rows = []
        for y in range(region.height - 1, -1, -1):
            row = []
            for x in range(region.width):
                ch = "."
                for i, s in enumerate(result.schedule):
                    if (x, y) in s.cells_at(t):
                        ch = chars[i % len(chars)]
                        break
                row.append(ch)
            rows.append("".join(row))
        blocks.append(f"t={t}\n" + "\n".join(rows))
    return "\n\n".join(blocks)

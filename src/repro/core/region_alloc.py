"""Reconfigurable-region allocation at design time.

The paper's refs [1] and [14] "take the different resources into account
by allocating suitable regions for a set of modules at design time" —
given a device and the module sets that will share each region, choose
where the reconfigurable regions go and how wide they must be.

Two services:

* :func:`minimal_region_width` — the narrowest left-anchored x-window of a
  fabric in which a module set is placeable (binary search over the
  window width; feasibility is monotone in width because a wider window's
  anchor set is a superset).
* :func:`allocate_regions` — pack several module *groups* into disjoint
  x-windows left to right, each sized minimally for its group; returns
  the windows and verified placements (the design-time floorplan of a
  multi-region system).

Feasibility probes run the CP placer under a budget, so "infeasible" may
mean "not proven feasible within the budget": the result errs toward
wider regions, never toward invalid ones (every returned placement is
verified).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.placer import CPPlacer, PlacerConfig
from repro.core.result import PlacementResult
from repro.fabric.region import PartialRegion
from repro.modules.module import Module


def _window_region(
    region: PartialRegion, x0: int, x1: int
) -> PartialRegion:
    """The sub-region of columns [x0, x1)."""
    mask = region.reconfigurable.copy()
    mask[:, :x0] = False
    mask[:, x1:] = False
    return PartialRegion(region.grid, mask, f"{region.name}[{x0}:{x1}]")


def _probe(
    region: PartialRegion,
    modules: Sequence[Module],
    x0: int,
    x1: int,
    budget: float,
) -> Optional[PlacementResult]:
    """Try to place all modules within columns [x0, x1)."""
    if x1 <= x0:
        return None
    window = _window_region(region, x0, x1)
    result = CPPlacer(
        PlacerConfig(time_limit=budget, first_solution_only=True)
    ).place(window, modules)
    if result.all_placed and result.placements:
        result.verify()
        return result
    return None


def minimal_region_width(
    region: PartialRegion,
    modules: Sequence[Module],
    probe_budget: float = 2.0,
    x0: int = 0,
) -> Tuple[Optional[int], Optional[PlacementResult]]:
    """Narrowest width w such that modules fit in columns [x0, x0 + w).

    Returns ``(None, None)`` when even the full remaining fabric fails
    (within the probe budget).  Binary search: O(log W) placer probes.
    """
    if not modules:
        raise ValueError("nothing to place")
    hi = region.width - x0
    best = _probe(region, modules, x0, x0 + hi, probe_budget)
    if best is None:
        return None, None
    # lower bound: the modules' area cannot fit in fewer columns than
    # total area / height, nor in less than the narrowest shape width
    min_area = sum(m.min_area() for m in modules)
    lo = max(
        max(m.min_width() for m in modules),
        -(-min_area // region.height),
        1,
    )
    best_w = hi
    while lo < best_w:
        mid = (lo + best_w) // 2
        result = _probe(region, modules, x0, x0 + mid, probe_budget)
        if result is not None:
            best, best_w = result, mid
        else:
            lo = mid + 1
    return best_w, best


@dataclass
class AllocatedRegion:
    """One reconfigurable region of a multi-region floorplan."""

    name: str
    x0: int
    width: int
    placement: PlacementResult

    @property
    def x1(self) -> int:
        return self.x0 + self.width


@dataclass
class AllocationResult:
    """Outcome of :func:`allocate_regions`."""

    regions: List[AllocatedRegion] = field(default_factory=list)
    #: group names that could not be allocated
    failed: List[str] = field(default_factory=list)
    elapsed: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.failed

    def total_width(self) -> int:
        return sum(r.width for r in self.regions)

    def summary(self) -> str:
        spans = ", ".join(
            f"{r.name}:[{r.x0},{r.x1})" for r in self.regions
        )
        return (
            f"regions={len(self.regions)} [{spans}] "
            f"failed={self.failed} elapsed={self.elapsed:.2f}s"
        )


def allocate_regions(
    region: PartialRegion,
    groups: Sequence[Tuple[str, Sequence[Module]]],
    probe_budget: float = 2.0,
) -> AllocationResult:
    """Assign disjoint minimal x-windows to module groups, left to right.

    Each group is a ``(name, modules)`` pair of modules that will share
    one reconfigurable region at runtime (the region must therefore hold
    all of them simultaneously — the conservative sizing of [14]).
    """
    start = time.monotonic()
    out = AllocationResult()
    cursor = 0
    for name, modules in groups:
        width, placement = minimal_region_width(
            region, modules, probe_budget=probe_budget, x0=cursor
        )
        if width is None or placement is None:
            out.failed.append(name)
            continue
        out.regions.append(
            AllocatedRegion(name=name, x0=cursor, width=width,
                            placement=placement)
        )
        cursor += width
    out.elapsed = time.monotonic() - start
    return out

"""Name-keyed backend registry.

Backends register a *factory* (name → callable taking an optional engine
config), so orchestration layers can be configured with plain strings:
the runtime admission chain and the portfolio member list are declarative
lists of registered names, and ``--backend`` on the experiment runner
selects engines the same way.  Duplicate names are rejected loudly —
silently shadowing an engine is exactly the bug class a registry exists
to prevent — and ``replace=True`` is the explicit escape hatch for tests
and plugins.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.core.backend.protocol import PlacementBackend

#: factory signature: ``factory(config=None) -> PlacementBackend``
BackendFactory = Callable[..., PlacementBackend]

_REGISTRY: Dict[str, BackendFactory] = {}


def register_backend(
    name: str, factory: BackendFactory, *, replace: bool = False
) -> None:
    """Register a backend factory under ``name``.

    Raises ``ValueError`` on duplicate names unless ``replace=True``.
    """
    if not name or not isinstance(name, str):
        raise ValueError(f"backend name must be a non-empty string, got {name!r}")
    if not replace and name in _REGISTRY:
        raise ValueError(
            f"backend {name!r} is already registered; pass replace=True to "
            f"override it deliberately"
        )
    _REGISTRY[name] = factory


def unregister_backend(name: str) -> None:
    """Remove a registered backend (primarily for tests)."""
    _REGISTRY.pop(name, None)


def create_backend(name: str, config=None) -> PlacementBackend:
    """Instantiate the backend registered under ``name``.

    ``config`` is handed to the factory verbatim (an engine-specific
    config object such as ``PlacerConfig`` / ``LNSConfig`` /
    ``PortfolioConfig`` / ``AnnealingConfig``); ``None`` means the
    backend's defaults.
    """
    try:
        factory = _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY)) or "<none>"
        raise KeyError(
            f"unknown placement backend {name!r}; registered: {known}"
        ) from None
    return factory(config)


def backend_capabilities(name: str):
    """Capability flags of a registered backend (instantiates it)."""
    return create_backend(name).capabilities


def available_backends() -> List[str]:
    """Sorted names of every registered backend."""
    return sorted(_REGISTRY)

"""Process-resident solve workers with per-process warmed mask caches.

Every parallel layer in the repo ships the same things across the process
boundary — a JSON-serializable region payload, module payloads, scalar
knobs — and pays the same setup on the far side: deserialize, build an
:class:`~repro.fabric.cache.AnchorMaskCache`, warm it, solve.  This
module centralizes the far side so worker *processes* are reusable:

* :func:`process_cache` keeps one named cache per process (module-global
  registry).  A pool whose workers survive across submissions — the
  sharded placement service's solve pool, a portfolio running inline —
  reuses warmed entries instead of re-deriving every cross-correlation
  per call.
* :func:`warm_process_cache` pre-warms a named cache from payloads and
  can persist the finished masks (:meth:`AnchorMaskCache.save`) so
  sibling workers :func:`process_cache`-``load`` them from disk instead
  of recomputing.
* :func:`solve_in_worker` is the uniform remote solve: one module against
  one region through an admission chain of registered backend names,
  returning a plain placement tuple.  The sharded service's process-pool
  mode plugs this into :attr:`RuntimeConfig.solver
  <repro.core.runtime.RuntimeConfig.solver>`.

Nothing solver-internal crosses the boundary (same rule as the
portfolio): payloads in, plain tuples out.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Sequence, Tuple

from repro.fabric.cache import AnchorMaskCache
from repro.fabric.io import region_from_dict
from repro.modules.spec import module_from_dict

#: per-process named caches (one registry per worker process)
_PROCESS_CACHES: Dict[str, AnchorMaskCache] = {}

#: (shape index, x, y, backend name) of one remote admission
WorkerPlacement = Tuple[int, int, int, str]


def process_cache(
    key: str,
    capacity: Optional[int] = None,
    load_path: Optional[str] = None,
) -> AnchorMaskCache:
    """The process-wide cache named ``key`` (created on first use).

    ``capacity`` and ``load_path`` only apply at creation: an existing
    cache is returned as-is (long-running workers must not have their
    warmed state silently replaced mid-run).  ``load_path`` seeds the new
    cache from a :meth:`AnchorMaskCache.save` artifact when the file
    exists; a missing file is not an error — the cache just starts cold.
    """
    cache = _PROCESS_CACHES.get(key)
    if cache is None:
        if load_path is not None and os.path.exists(load_path):
            cache = AnchorMaskCache.load(load_path, capacity=capacity)
        else:
            cache = AnchorMaskCache(capacity=capacity)
        _PROCESS_CACHES[key] = cache
    return cache


def reset_process_caches() -> None:
    """Drop every named cache (test isolation hook)."""
    _PROCESS_CACHES.clear()


def warm_process_cache(
    key: str,
    region_payload: dict,
    module_payloads: List[dict],
    capacity: Optional[int] = None,
    save_path: Optional[str] = None,
) -> int:
    """Warm the named cache for one region/library; returns mask count.

    Designed to be ``pool.submit``-ed once per worker process before
    serving starts; with ``save_path`` the finished masks are persisted
    so later-spawned siblings load instead of recompute.
    """
    region = region_from_dict(region_payload)
    modules = [module_from_dict(p) for p in module_payloads]
    cache = process_cache(key, capacity=capacity)
    n = cache.warm(region, modules)
    if save_path is not None:
        cache.save(save_path)
    return n


def solve_in_worker(
    region_payload: dict,
    module_payload: dict,
    chain: Sequence[str],
    time_limit: float,
    seed: int = 0,
    cache_key: str = "default",
    capacity: Optional[int] = None,
    load_path: Optional[str] = None,
) -> Optional[WorkerPlacement]:
    """Admit one module on one region through a backend chain, remotely.

    Returns ``(shape_index, x, y, backend_name)`` for the first rung that
    produces a placement, or None when every rung ran cleanly and none
    fit — a *definitive* no-fit the caller must not second-guess.  If
    every rung raised instead, the last error propagates so the caller's
    graceful-degradation path (the runtime manager falls back to its
    in-process chain) can take over.
    """
    # lazy: workers import the registry on first solve, not at fork time
    from repro.core.backend import PlacementRequest, create_backend

    region = region_from_dict(region_payload)
    module = module_from_dict(module_payload)
    cache = process_cache(cache_key, capacity=capacity, load_path=load_path)
    errors: List[str] = []
    for name in chain:
        try:
            res = create_backend(name).place(
                PlacementRequest(
                    region=region,
                    modules=[module],
                    seed=seed,
                    time_limit=time_limit,
                    first_solution_only=True,
                    cache=cache,
                )
            )
        except Exception as exc:
            errors.append(f"{name}: {exc}")
            continue
        if res.placements:
            p = res.placements[0]
            return p.shape_index, p.x, p.y, name
    if errors and len(errors) == len(chain):
        raise RuntimeError(
            "every chain rung failed in worker: " + "; ".join(errors)
        )
    return None

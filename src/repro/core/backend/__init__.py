"""Uniform placement-backend protocol, registry and adapters.

Importing this package registers the default backend fleet (``cp``,
``lns``, ``portfolio``, ``greedy``, ``bottom-left``, ``first-fit``,
``best-fit``, ``kamer``, ``annealing``, ``1d-slots``); orchestration
layers address engines by registered name only.
"""

from repro.core.backend.protocol import (
    BackendCapabilities,
    PlacementBackend,
    PlacementRequest,
)
from repro.core.backend.registry import (
    available_backends,
    backend_capabilities,
    create_backend,
    register_backend,
    unregister_backend,
)
from repro.core.backend.adapters import (
    BaselineBackend,
    CPBackend,
    LNSBackend,
    PortfolioBackend,
    register_default_backends,
)
from repro.core.backend.worker import (
    process_cache,
    reset_process_caches,
    solve_in_worker,
    warm_process_cache,
)

__all__ = [
    "BackendCapabilities",
    "PlacementBackend",
    "PlacementRequest",
    "available_backends",
    "backend_capabilities",
    "create_backend",
    "register_backend",
    "unregister_backend",
    "BaselineBackend",
    "CPBackend",
    "LNSBackend",
    "PortfolioBackend",
    "register_default_backends",
    "process_cache",
    "reset_process_caches",
    "solve_in_worker",
    "warm_process_cache",
]

"""Backend adapters for every placement engine in the repo.

Each adapter maps the uniform :class:`~repro.core.backend.protocol.PlacementRequest`
knobs onto one engine's native config and delegates; request overrides
always win over the backend's construction-time config, and ``None``
request fields leave the engine's defaults untouched.  The module tail
registers the default fleet:

=============  ===========================================================
``cp``         exact CP kernel (B&B extent minimization)
``lns``        large-neighborhood search over the CP kernel
``portfolio``  best-of-N parallel LNS (process pool)
``greedy``     alias of ``bottom-left`` — the runtime chain's classic rung
``bottom-left``/``first-fit``/``best-fit``  greedy offline heuristics
``kamer``      Bazargan-style maximal-empty-rectangle placement
``annealing``  simulated annealing over (order, alternative) encodings
               (deterministic per seed: the adapter derives an evaluation
               cap from the request budget instead of racing the clock)
``analytical`` force-directed relaxation + nearest-anchor legalization,
               also the ``warm_start`` seeder of ``cp`` and ``lns``
``1d-slots``   historical fixed-slot model (not relocatable)
``temporal-cp``  joint place-and-schedule over a bounded horizon
                 (``schedules=True``; spatial requests degrade to a
                 one-tick horizon)
=============  ===========================================================
"""

from __future__ import annotations

from dataclasses import replace as dc_replace
from typing import Callable, Optional

from repro.core.backend.protocol import (
    BackendCapabilities,
    PlacementBackend,
    PlacementRequest,
)
from repro.core.backend.registry import register_backend
from repro.core.lns import LNSConfig, LNSPlacer
from repro.core.placer import CPPlacer, PlacerConfig
from repro.core.portfolio import PortfolioConfig, PortfolioPlacer
from repro.core.result import PlacementResult
from repro.obs.profile import SolveProfile
from repro.obs.trace import Tracer
from repro.placer import (
    AnalyticalConfig,
    AnalyticalPlacer,
    AnnealingConfig,
    AnnealingPlacer,
    BasePlacer,
    BestFitPlacer,
    BottomLeftPlacer,
    FirstFitPlacer,
    KamerPlacer,
    SlotPlacer,
)


class CPBackend(PlacementBackend):
    """The exact CP kernel behind the uniform surface."""

    name = "cp"
    capabilities = BackendCapabilities(
        supports_alternatives=True,
        supports_objective=True,
        anytime=True,
        relocatable=True,
    )
    session_self_recording = True  # CPPlacer feeds the session itself

    def __init__(self, config: Optional[PlacerConfig] = None) -> None:
        self.config = config or PlacerConfig()

    def _solve(self, request, tracer, profiling):
        cfg = self.config
        updates = {}
        if request.time_limit is not None:
            updates["time_limit"] = request.time_limit
        if request.node_limit is not None:
            updates["node_limit"] = request.node_limit
        if request.seed is not None:
            updates["seed"] = request.seed
        if request.first_solution_only:
            updates["first_solution_only"] = True
        if request.profile:
            updates["profile"] = True
        if request.cache is not None:
            updates["cache"] = request.cache
        if tracer is not None:
            updates["tracer"] = tracer
        if request.incremental is not None:
            updates["incremental"] = request.incremental
        if request.bitboard is not None:
            updates["bitboard"] = request.bitboard
        if request.warm_start is not None:
            updates["warm_start"] = request.warm_start
        if updates:
            cfg = dc_replace(cfg, **updates)
        return CPPlacer(cfg).place(request.region, list(request.modules))


class LNSBackend(PlacementBackend):
    """LNS improvement loop over the CP kernel."""

    name = "lns"
    capabilities = BackendCapabilities(
        supports_alternatives=True,
        supports_objective=True,
        anytime=True,
        relocatable=True,
    )
    session_self_recording = True  # its CP subsolves feed the session

    def __init__(self, config: Optional[LNSConfig] = None) -> None:
        self.config = config or LNSConfig()

    def _solve(self, request, tracer, profiling):
        cfg = self.config
        updates = {}
        if request.time_limit is not None:
            updates["time_limit"] = request.time_limit
        if request.seed is not None:
            updates["seed"] = request.seed
        if request.profile:
            updates["profile"] = True
        if request.cache is not None:
            updates["cache"] = request.cache
        if tracer is not None:
            updates["tracer"] = tracer
        if request.incremental is not None:
            updates["incremental"] = request.incremental
        if request.bitboard is not None:
            updates["bitboard"] = request.bitboard
        if request.warm_start is not None:
            updates["warm_start"] = request.warm_start
        if updates:
            cfg = dc_replace(cfg, **updates)
        return LNSPlacer(cfg).place(request.region, list(request.modules))


class PortfolioBackend(PlacementBackend):
    """Best-of-N parallel LNS (per-request process pool).

    Not relocatable: a portfolio answer is a whole-instance packing whose
    quality comes from global restructuring, so it cannot serve the
    runtime chain's incremental one-module requests economically.
    """

    name = "portfolio"
    capabilities = BackendCapabilities(
        supports_alternatives=True,
        supports_objective=True,
        anytime=True,
        relocatable=False,
    )
    session_self_recording = False  # workers can't reach this session

    def __init__(self, config: Optional[PortfolioConfig] = None) -> None:
        self.config = config or PortfolioConfig()

    def _solve(self, request, tracer, profiling):
        cfg = self.config
        updates = {}
        if request.time_limit is not None:
            updates["time_limit"] = request.time_limit
        if request.seed is not None:
            updates["base_seed"] = request.seed
        if profiling:
            # the merged member profile is what place() records
            updates["profile"] = True
        if tracer is not None:
            updates["tracer"] = tracer
        if request.incremental is not None:
            updates["incremental"] = request.incremental
        if request.bitboard is not None:
            updates["bitboard"] = request.bitboard
        if updates:
            cfg = dc_replace(cfg, **updates)
        return PortfolioPlacer(cfg).place(request.region, list(request.modules))


class TemporalCPBackend(PlacementBackend):
    """Joint place-and-schedule: ``(anchor, start_time)`` per module.

    Wraps :class:`~repro.core.temporal.TemporalCPPlacer` (the production
    anchor-mask kernel with a time axis).  ``request.horizon`` /
    ``durations`` / ``precedences`` select the scheduling window; a
    request without them is served as the degenerate one-tick schedule —
    plain spatial packing through the same temporal code path — so the
    backend composes with every spatial caller, including the
    cross-backend differential suite.

    The schedule rides in ``stats["schedule"]`` as ``(module, shape,
    x, y, start, duration)`` rows next to ``stats["makespan"]`` and
    ``stats["horizon"]``.  Status never claims ``"optimal"``: what the
    branch-and-bound proves optimal is the *makespan*, not the spatial
    extent the rest of the registry optimizes (``supports_objective`` is
    False); makespan optimality is reported honestly in
    ``stats["makespan_optimal"]``.

    Note that with ``horizon > 1`` two placements may legitimately share
    fabric cells — they run at different ticks.  Such results satisfy
    :meth:`~repro.core.temporal.TemporalResult.verify` (time-aware), not
    the purely spatial ``PlacementResult.verify``; only degenerate
    one-tick results are spatially disjoint.
    """

    name = "temporal-cp"
    capabilities = BackendCapabilities(
        supports_alternatives=True,
        supports_objective=False,
        anytime=False,
        relocatable=True,
        schedules=True,
    )
    session_self_recording = False

    #: horizon used when the request carries none (spatial degenerate mode)
    DEFAULT_HORIZON = 1

    def __init__(self, config: Optional[int] = None) -> None:
        #: optional construction-time default horizon (an int, kept as
        #: simple as the registry's config pass-through allows)
        self.default_horizon = config

    def _solve(self, request, tracer, profiling):
        from repro.core.result import Placement
        from repro.core.temporal import TemporalCPPlacer, TemporalTask

        modules = list(request.modules)
        horizon = (
            request.horizon
            if request.horizon is not None
            else (self.default_horizon or self.DEFAULT_HORIZON)
        )
        durations = (
            list(request.durations)
            if request.durations is not None
            else [1] * len(modules)
        )
        if len(durations) != len(modules):
            raise ValueError("durations must align with modules")
        placer = TemporalCPPlacer(horizon=horizon)
        if request.seed is not None:
            placer.seed = request.seed
        if request.time_limit is not None:
            placer.time_limit = request.time_limit
        if request.incremental is not None:
            placer.incremental = request.incremental
        if request.bitboard is not None:
            placer.bitboard = request.bitboard
        tasks = [
            TemporalTask(module, d) for module, d in zip(modules, durations)
        ]
        tres = placer.place(
            request.region,
            tasks,
            list(request.precedences),
            cache=request.cache,
        )
        placements = [
            Placement(s.task.module, s.shape_index, s.x, s.y)
            for s in tres.schedule
        ]
        status = "feasible" if tres.status == "optimal" else tres.status
        return PlacementResult(
            request.region,
            placements,
            unplaced=[] if tres.schedule else modules,
            status=status,
            elapsed=tres.elapsed,
            stats={
                "method": self.name,
                "horizon": horizon,
                "makespan": tres.makespan,
                "makespan_optimal": tres.status == "optimal",
                "schedule": [
                    (
                        s.task.module.name,
                        s.shape_index,
                        s.x,
                        s.y,
                        s.start,
                        s.task.duration,
                    )
                    for s in tres.schedule
                ],
            },
        )


class BaselineBackend(PlacementBackend):
    """Adapter running one :class:`BasePlacer` heuristic per request.

    A fresh placer is built per call (they are stateful across ``_run``),
    and the request's seed / budget / cache land on the uniform
    ``BasePlacer`` knobs — no per-placer plumbing.
    """

    session_self_recording = False

    def __init__(
        self,
        factory: Callable[[], BasePlacer],
        name: str,
        capabilities: BackendCapabilities = BackendCapabilities(),
    ) -> None:
        self._factory = factory
        self.name = name
        self.capabilities = capabilities

    def _solve(self, request, tracer, profiling):
        placer = self._factory()
        if request.seed is not None:
            placer.seed = request.seed
        if request.time_limit is not None:
            placer.time_limit = request.time_limit
        return placer.place(
            request.region, list(request.modules), cache=request.cache
        )


class AnalyticalBackend(PlacementBackend):
    """Force-directed relaxation + nearest-anchor legalization.

    Wraps :class:`~repro.placer.analytical.AnalyticalPlacer`.  The request
    seed / budget / cache / tracer land on :class:`AnalyticalConfig`, and
    the relaxation/legalization counters are surfaced as the
    ``analytical_*`` profile counters so profiling sessions can attribute
    warm-start cost.  Not anytime: the relaxation must finish (or hit its
    budget) before legalization produces any placement at all.
    """

    name = "analytical"
    capabilities = BackendCapabilities(
        supports_alternatives=True,
        supports_objective=True,
        anytime=False,
        relocatable=True,
    )
    session_self_recording = False

    def __init__(self, config: Optional[AnalyticalConfig] = None) -> None:
        self.config = config or AnalyticalConfig()

    def _solve(self, request, tracer, profiling):
        cfg = self.config
        updates = {}
        if request.seed is not None:
            updates["seed"] = request.seed
        if request.time_limit is not None:
            updates["time_limit"] = request.time_limit
        if tracer is not None:
            updates["tracer"] = tracer
        if updates:
            cfg = dc_replace(cfg, **updates)
        result = AnalyticalPlacer(cfg).place(
            request.region, list(request.modules), cache=request.cache
        )
        if profiling:
            profile = SolveProfile(
                elapsed=result.elapsed,
                stop_reason=result.status,
                meta={
                    "backend": self.name,
                    "placed": len(result.placements),
                    "unplaced": len(result.unplaced),
                },
            )
            profile.analytical_iterations = int(
                result.stats.get("iterations", 0)
            )
            profile.analytical_snapped = int(result.stats.get("snapped", 0))
            result.stats["profile"] = profile
        return result


class AnnealingBackend(PlacementBackend):
    """Simulated annealing with a budget-derived deterministic eval cap.

    With ``max_evaluations=None`` the raw placer stops on the wall clock,
    so the same seed explores a machine-load-dependent number of states —
    results differ between a loaded CI box and a fast laptop.  This
    adapter derives a deterministic cap from the effective time budget
    (``EVALS_PER_MODULE_SECOND`` calibrated so the cap lands near what the
    clock would have allowed; decode cost scales with the module count),
    keeping the wall clock only as a safety net.  Same request + same
    seed is therefore bit-identical anywhere.
    """

    name = "annealing"
    capabilities = BackendCapabilities(
        supports_objective=True,
        anytime=True,
    )
    session_self_recording = False

    #: decode throughput assumed when converting seconds to evaluations
    EVALS_PER_MODULE_SECOND = 2500

    def __init__(self, config: Optional[AnnealingConfig] = None) -> None:
        self.config = config or AnnealingConfig()

    def _solve(self, request, tracer, profiling):
        cfg = self.config
        updates = {}
        if request.seed is not None:
            updates["seed"] = request.seed
        if request.time_limit is not None:
            updates["time_limit"] = request.time_limit
        budget = (
            request.time_limit
            if request.time_limit is not None
            else cfg.time_limit
        )
        if cfg.max_evaluations is None and budget is not None:
            n = max(1, len(request.modules))
            updates["max_evaluations"] = max(
                1, int(budget * self.EVALS_PER_MODULE_SECOND / n)
            )
        if updates:
            cfg = dc_replace(cfg, **updates)
        return AnnealingPlacer(cfg).place(
            request.region, list(request.modules), cache=request.cache
        )


# ----------------------------------------------------------------------
# Default registrations
# ----------------------------------------------------------------------
def _baseline_factory(
    placer_cls, name: str, capabilities: BackendCapabilities
):
    def factory(config=None) -> BaselineBackend:
        make = (lambda: placer_cls(config)) if config is not None else placer_cls
        return BaselineBackend(make, name, capabilities)

    return factory


_GREEDY_CAPS = BackendCapabilities()
_BASELINES = (
    # "greedy" is the runtime chain's historical name for the bottom-left
    # rung; both names resolve to the same placer
    ("greedy", BottomLeftPlacer, _GREEDY_CAPS),
    ("bottom-left", BottomLeftPlacer, _GREEDY_CAPS),
    ("first-fit", FirstFitPlacer, _GREEDY_CAPS),
    ("best-fit", BestFitPlacer, BackendCapabilities(supports_objective=True)),
    ("kamer", KamerPlacer, _GREEDY_CAPS),
    (
        "1d-slots",
        SlotPlacer,
        BackendCapabilities(relocatable=False),
    ),
)


def register_default_backends() -> None:
    """Idempotently register the built-in fleet (module import does this)."""
    register_backend("cp", CPBackend, replace=True)
    register_backend("lns", LNSBackend, replace=True)
    register_backend("portfolio", PortfolioBackend, replace=True)
    register_backend("temporal-cp", TemporalCPBackend, replace=True)
    register_backend("analytical", AnalyticalBackend, replace=True)
    register_backend("annealing", AnnealingBackend, replace=True)
    for name, cls, caps in _BASELINES:
        register_backend(name, _baseline_factory(cls, name, caps), replace=True)


register_default_backends()

"""The uniform placement-backend surface.

Every placement engine in the repo — the CP kernel, LNS, the parallel
portfolio and all the related-work baselines — is reachable through one
request/response protocol:

* :class:`PlacementRequest` carries the instance (region + modules) and
  the uniform knobs every engine understands a subset of: seed, wall-clock
  / node budget, first-solution mode, a shared
  :class:`~repro.fabric.cache.AnchorMaskCache` and a
  :class:`~repro.obs.trace.Tracer`.
* :class:`PlacementBackend.place` normalizes the tracer, emits the
  ``backend.start`` / ``backend.result`` event pair, guarantees a
  per-backend :class:`~repro.obs.profile.SolveProfile` section whenever
  profiling is requested (explicitly or by an active
  :func:`~repro.obs.context.profiling_session`), and stamps
  ``stats["backend"]``.  Concrete adapters only implement ``_solve``.
* :class:`BackendCapabilities` declares what a backend can honestly do, so
  orchestration layers (the runtime admission chain, the experiment
  runner) can validate a configuration instead of failing at serve time.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.core.result import PlacementResult
from repro.fabric.cache import AnchorMaskCache
from repro.fabric.region import PartialRegion
from repro.modules.module import Module
from repro.obs import context as obs_context
from repro.obs.profile import SolveProfile
from repro.obs.trace import BACKEND_RESULT, BACKEND_START, Tracer


@dataclass(frozen=True)
class BackendCapabilities:
    """What a backend can honestly claim to do."""

    #: considers every design alternative of a module (False = primary
    #: shape only, or the engine ignores the alternative set)
    supports_alternatives: bool = True
    #: optimizes the extent objective (Eq. 6) rather than just finding a
    #: feasible packing
    supports_objective: bool = False
    #: can be interrupted and still return its best incumbent
    anytime: bool = False
    #: placements remain individually valid when neighbours move or leave,
    #: so the backend can serve incremental residual-region requests (the
    #: runtime admission chain requires this)
    relocatable: bool = True
    #: places *and* schedules: honors ``PlacementRequest.horizon`` /
    #: ``durations`` and returns per-module start ticks (the schedule in
    #: ``stats["schedule"]``) instead of place-now-or-fail
    schedules: bool = False


@dataclass
class PlacementRequest:
    """One uniform placement request (any backend)."""

    region: PartialRegion
    modules: Sequence[Module]
    #: RNG seed override (None = keep the backend's configured seed)
    seed: Optional[int] = None
    #: wall-clock budget override in seconds (None = backend default)
    time_limit: Optional[float] = None
    #: search-node budget override (backends without node budgets ignore it)
    node_limit: Optional[int] = None
    #: stop at the first feasible solution (objective backends only)
    first_solution_only: bool = False
    #: force profile collection even without an active profiling session
    profile: bool = False
    #: shared anchor-mask cache (None = each backend's own policy)
    cache: Optional[AnchorMaskCache] = None
    #: event sink for ``backend.*`` (and engine-level) trace events
    tracer: Optional[Tracer] = None
    #: incremental geost propagation override (None = backend default,
    #: False = wholesale re-filtering — the differential oracle mode)
    incremental: Optional[bool] = None
    #: bitboard-first vectorized sweep override (None = backend default,
    #: False = the per-shape scalar oracle path)
    bitboard: Optional[bool] = None
    #: scheduling horizon in ticks for backends with ``schedules=True``
    #: (None = degenerate single-tick horizon: a purely spatial request)
    horizon: Optional[int] = None
    #: per-module execution durations, aligned with ``modules`` (None =
    #: every module runs for one tick); requires ``horizon``
    durations: Optional[Sequence[int]] = None
    #: precedence edges ``(a, b)`` — module a must finish before module b
    #: starts; only honored by scheduling backends
    precedences: Sequence = ()
    #: name of a registered backend whose legalized placement seeds the
    #: solve (honored by the optimizing backends: CP clamps its objective
    #: below the seed, LNS adopts it as the bootstrap incumbent)
    warm_start: Optional[str] = None


class PlacementBackend:
    """Base class of every registered placement backend.

    ``place`` is the only public entry point; subclasses implement
    ``_solve(request, tracer, profiling)`` and declare ``name`` /
    ``capabilities``.  ``session_self_recording`` marks engines whose
    internals already feed the active profiling session (the CP kernel
    records each solve itself) so the shared scaffolding does not record
    their profile twice.
    """

    name: str = "backend"
    capabilities: BackendCapabilities = BackendCapabilities()
    #: True when the wrapped engine records its own SolveProfile into the
    #: process profiling session (CP and LNS-over-CP do)
    session_self_recording: bool = False

    # ------------------------------------------------------------------
    def place(self, request: PlacementRequest) -> PlacementResult:
        tracer = request.tracer
        if tracer is not None and not tracer.enabled:
            tracer = None
        if tracer is not None:
            tracer.emit(
                BACKEND_START, backend=self.name, modules=len(request.modules)
            )
        session = obs_context.current()
        profiling = request.profile or session is not None
        start = time.monotonic()
        try:
            result = self._solve(request, tracer, profiling)
        except Exception as exc:
            if tracer is not None:
                tracer.emit(
                    BACKEND_RESULT,
                    backend=self.name,
                    status="error",
                    placed=0,
                    elapsed=time.monotonic() - start,
                    error=f"{type(exc).__name__}: {exc}",
                )
            raise
        result.stats.setdefault("backend", self.name)
        if profiling:
            self._ensure_profile(result, session)
        if tracer is not None:
            tracer.emit(
                BACKEND_RESULT,
                backend=self.name,
                status=result.status,
                placed=len(result.placements),
                elapsed=result.elapsed,
            )
        return result

    def _ensure_profile(self, result: PlacementResult, session) -> None:
        """Guarantee a per-backend profile section and feed the session."""
        profile = result.stats.get("profile")
        if profile is None:
            profile = SolveProfile(
                elapsed=result.elapsed,
                stop_reason=result.status,
                meta={
                    "backend": self.name,
                    "placed": len(result.placements),
                    "unplaced": len(result.unplaced),
                },
            )
            result.stats["profile"] = profile
        elif isinstance(profile, SolveProfile):
            profile.meta.setdefault("backend", self.name)
        if session is not None and not self.session_self_recording:
            session.record(
                profile
                if isinstance(profile, SolveProfile)
                else SolveProfile.from_dict(profile)
            )

    # ------------------------------------------------------------------
    def _solve(
        self,
        request: PlacementRequest,
        tracer: Optional[Tracer],
        profiling: bool,
    ) -> PlacementResult:
        raise NotImplementedError

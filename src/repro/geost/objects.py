"""geost objects: anchor variables plus a shape variable.

"In the geost constraint kernel, a module is defined as a finite set of
shapes" (Section IV): a :class:`GeostObject` holds one CP variable per
dimension for its anchor and one CP variable ranging over shape ids of a
shared :class:`~repro.geost.shapes.ShapeTable`.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.cp.variable import IntVar
from repro.geost.shapes import GeostShape, ShapeTable


class GeostObject:
    """One placeable object of a geost constraint."""

    __slots__ = ("oid", "origin", "shape_var", "table")

    def __init__(
        self,
        oid: int,
        origin: Sequence[IntVar],
        shape_var: IntVar,
        table: ShapeTable,
    ) -> None:
        if not origin:
            raise ValueError("an object needs at least one origin variable")
        for sid in shape_var.domain:
            if not 0 <= sid < len(table):
                raise ValueError(f"shape id {sid} not in the shape table")
        dims = {table[sid].dim for sid in shape_var.domain}
        if dims != {len(origin)}:
            raise ValueError(
                f"shape dims {dims} do not match {len(origin)} origin vars"
            )
        self.oid = oid
        self.origin = list(origin)
        self.shape_var = shape_var
        self.table = table

    @property
    def dim(self) -> int:
        return len(self.origin)

    def is_fixed(self) -> bool:
        return self.shape_var.is_fixed() and all(v.is_fixed() for v in self.origin)

    def anchor_min(self) -> Tuple[int, ...]:
        return tuple(v.min() for v in self.origin)

    def anchor_max(self) -> Tuple[int, ...]:
        return tuple(v.max() for v in self.origin)

    def candidate_shapes(self) -> List[int]:
        return list(self.shape_var.domain)

    def shape(self, sid: int) -> GeostShape:
        return self.table[sid]

    def fixed_placement(self) -> Tuple[Tuple[int, ...], int]:
        """(anchor, shape id) — only valid when :meth:`is_fixed`."""
        return tuple(v.value() for v in self.origin), self.shape_var.value()

    def __repr__(self) -> str:
        return f"GeostObject(oid={self.oid}, dim={self.dim})"

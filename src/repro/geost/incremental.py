"""Shared accounting for incremental geost propagation.

Both geost kernels — the reference :class:`~repro.geost.kernel.Geost` and
the production :class:`~repro.geost.placement.PlacementKernel` — maintain
per-object dirty sets and trail-aware caches when running incrementally.
This module holds the counter block they export (surfaced as the
``geost.incremental`` trace event and the ``geost_*`` fields of
:class:`~repro.obs.profile.SolveProfile`):

``dirty``
    objects actually re-filtered (popped from the dirty set); the wholesale
    path would have re-filtered *every* object on each of those wake-ups.
``reused``
    cached derived state served without recomputation — forbidden-box
    lists (reference kernel) or anchor-count queries (placement kernel).
``rasterized``
    objects whose footprint was stamped into the occupancy bitboard after
    becoming fully fixed, switching them from per-box containment tests to
    the mask-intersection fast path.
``rows_tested``
    vectorized frontier scans performed by the bitboard-first sweep
    (whole candidate lattices tested by mask intersection); surfaced as
    ``bitboard_rows_tested`` on the profile and the ``geost.bitboard``
    trace event.
``fallbacks``
    filter invocations that wanted the bitboard sweep but fell back to
    the scalar path because no board exists (anchor window above the
    rasterization guard); surfaced as ``bitboard_fallbacks``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass
class IncStats:
    """Counters for one kernel instance (monotone within a solve)."""

    dirty: int = 0
    reused: int = 0
    rasterized: int = 0
    rows_tested: int = 0
    fallbacks: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "dirty": self.dirty,
            "reused": self.reused,
            "rasterized": self.rasterized,
            "rows_tested": self.rows_tested,
            "fallbacks": self.fallbacks,
        }

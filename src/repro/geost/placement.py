"""Resource-extended geost kernel, vectorized for FPGA placement.

This propagator enforces, in one global constraint, the paper's three
constraint families (Section III-C):

* **M_a** — every tile inside the constrained region (Eq. 2),
* **M_b** — every tile on a fabric tile of identical resource type (Eq. 3),
* **M_c** — no two modules overlap (Eq. 4),

over objects with polymorphic shapes (design alternatives).  M_a and M_b
are *static*: they only depend on the fabric, so they are precomputed once
as per-(module, shape) boolean anchor masks
(:func:`repro.fabric.masks.valid_anchor_mask` — the resource-typed
forbidden-region extension evaluated wholesale).  M_c is dynamic: when a
module becomes fixed its cells are imprinted into an occupancy grid and the
anchor masks of the remaining modules are narrowed by exactly the anchors
that would now collide — a vectorized difference-of-coordinates kernel.

Filtering strength: for every unfixed module the kernel maintains domain
consistency of the shape variable (a shape with no remaining anchor is
dropped) and *per-axis* domain consistency of x and y against the union of
its candidate shapes' anchor masks — strictly stronger than the classic
bounds-only sweep for this problem class, at the cost of being specialized
to 2-D grids.

All dynamic state (occupancy, mask narrowing, placement flags) is undone
through the engine trail, so the kernel composes with any search.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cp.domain import Domain
from repro.cp.engine import Engine, Inconsistent
from repro.cp.propagator import Priority, Propagator
from repro.cp.trail import Revision
from repro.cp.variable import IntVar
from repro.fabric.cache import AnchorMaskCache
from repro.fabric.masks import (
    compatibility_masks,
    count_anchors,
    count_anchors_batch,
    valid_anchor_mask,
)
from repro.fabric.region import NarrowedRegion, PartialRegion
from repro.geost.incremental import IncStats
from repro.modules.footprint import Footprint
from repro.modules.module import Module
from repro.obs.trace import GEOST_BITBOARD, GEOST_INCREMENTAL, KERNEL_IMPRINT


@dataclass(frozen=True)
class PlacedModule:
    """A concrete placement decision: module, chosen shape, anchor.

    ``start`` is the scheduled start tick when the kernel ran with a time
    axis (``horizon`` given), ``None`` for purely spatial placements.
    """

    module: Module
    shape_index: int
    x: int
    y: int
    start: Optional[int] = None

    @property
    def footprint(self) -> Footprint:
        return self.module.shapes[self.shape_index]

    def absolute_cells(self) -> List[Tuple[int, int]]:
        return [(self.x + dx, self.y + dy) for dx, dy, _ in self.footprint.cells]


class _Item:
    """Internal per-module record."""

    __slots__ = (
        "index", "module", "x", "y", "s", "t", "duration", "cells", "placed"
    )

    def __init__(
        self,
        index: int,
        module: Module,
        x: IntVar,
        y: IntVar,
        s: IntVar,
        t: Optional[IntVar] = None,
        duration: int = 1,
    ) -> None:
        self.index = index
        self.module = module
        self.x = x
        self.y = y
        self.s = s
        #: start-tick variable (None when the kernel runs without a time
        #: axis) and execution duration in ticks
        self.t = t
        self.duration = duration
        #: per-shape (n, 2) arrays of (dy, dx) cell offsets
        self.cells: List[np.ndarray] = [
            np.array(
                [(dy, dx) for dx, dy, _ in sorted(fp.cells)], dtype=np.int64
            )
            for fp in module.shapes
        ]
        self.placed = False

    def is_fixed(self) -> bool:
        fixed = self.x.is_fixed() and self.y.is_fixed() and self.s.is_fixed()
        if self.t is not None:
            fixed = fixed and self.t.is_fixed()
        return fixed


class PlacementKernel(Propagator):
    """Global placement constraint over a heterogeneous partial region.

    ``incremental=True`` (default) re-filters only the modules whose
    variables changed since the last fixpoint (the dirty set fed by
    :meth:`on_event`) and serves :meth:`anchor_count` from a cache keyed on
    a :class:`~repro.cp.trail.Revision` stamp that mask-bank mutations and
    their trail undos both bump.  ``incremental=False`` re-filters every
    module on each wake-up — the wholesale oracle the differential suite
    pins against; both modes reach the same fixpoint (the per-module
    filters are monotone, so chaotic iteration is confluent) and hence
    produce bit-identical search trees.

    ``bitboard=True`` (default) additionally batches the per-shape work:
    :meth:`_prune` tests all candidate shapes of a module against the
    occupancy/domain masks in one stacked bank reduction instead of one
    NumPy dispatch per shape, and :meth:`anchor_count` counts all shapes
    through :func:`~repro.fabric.masks.count_anchors_batch`.  Pure
    vectorization of the same boolean algebra — identical prunes, counts
    and cache behavior — so ``bitboard=False`` is the per-shape scalar
    oracle of the differential suite.

    ``horizon`` (optional) adds a bounded time axis: every module gets a
    start variable ``ts[i]`` and a ``durations[i]``-tick extrusion, the
    anchor bank grows to per-shape (T, H, W) stacks (the static spatial
    mask tiled over the horizon with start ticks past ``T - duration``
    cleared), occupancy becomes a (T, H, W) volume, and non-overlap means
    no two modules share a cell *while both are resident* — exactly the
    ``core.temporal._extrude`` model, evaluated through the same
    vectorized mask algebra.  The temporal narrowing after an imprint
    reuses the spatial difference-of-coordinates kernel and expands each
    colliding spatial anchor over its time window
    ``[t0 - d_other + 1, t0 + d0 - 1]`` — the start ticks at which the
    other shape would be resident simultaneously.  ``horizon=None``
    leaves every code path byte-identical to the purely spatial kernel.
    """

    priority = Priority.EXPENSIVE
    #: one run drains the dirty set to this propagator's own fixpoint;
    #: self-caused events land in the dirty set via on_event and are
    #: consumed by the same run, so the engine need not re-queue it
    idempotent = True

    def __init__(
        self,
        region: PartialRegion,
        modules: Sequence[Module],
        xs: Sequence[IntVar],
        ys: Sequence[IntVar],
        ss: Sequence[IntVar],
        cache: Optional[AnchorMaskCache] = None,
        incremental: bool = True,
        bitboard: bool = True,
        horizon: Optional[int] = None,
        durations: Optional[Sequence[int]] = None,
        ts: Optional[Sequence[IntVar]] = None,
    ) -> None:
        super().__init__("placement-kernel")
        if not (len(modules) == len(xs) == len(ys) == len(ss)):
            raise ValueError("modules and variable sequences must align")
        if not modules:
            raise ValueError("at least one module is required")
        if horizon is not None:
            if horizon <= 0:
                raise ValueError("horizon must be positive")
            if durations is None or ts is None:
                raise ValueError("horizon requires durations and ts")
            if not (len(durations) == len(ts) == len(modules)):
                raise ValueError("durations and ts must align with modules")
            for m, d in zip(modules, durations):
                if d <= 0:
                    raise ValueError(f"{m.name}: duration must be positive")
                if d > horizon:
                    raise ValueError(
                        f"{m.name}: duration {d} exceeds horizon {horizon}"
                    )
        elif durations is not None or ts is not None:
            raise ValueError("durations/ts require a horizon")
        self.region = region
        self.H, self.W = region.height, region.width
        #: time-axis extent (None — the purely spatial kernel)
        self.T = horizon
        self._hw = self.H * self.W
        self.incremental = incremental
        self.bitboard = bitboard
        self.inc_stats = IncStats()
        #: bumped on every mask-bank mutation and from its trail undo —
        #: keys the anchor-count cache
        self._rev = Revision()
        self._count_cache: Dict[int, Tuple] = {}
        if horizon is not None:
            self.items = [
                _Item(i, m, x, y, s, t, int(d))
                for i, (m, x, y, s, t, d) in enumerate(
                    zip(modules, xs, ys, ss, ts, durations)
                )
            ]
        else:
            self.items = [
                _Item(i, m, x, y, s)
                for i, (m, x, y, s) in enumerate(zip(modules, xs, ys, ss))
            ]
        # three mask sources, cheapest first: a NarrowedRegion with a cache
        # reuses the *base* region's memoized masks and fixes them up below
        # (the incremental LNS path); a cache alone memoizes per (region,
        # footprint); no cache recomputes the cross-correlation every time
        snap = cache.snapshot() if cache is not None else None
        narrowed = cache is not None and isinstance(region, NarrowedRegion)
        if narrowed:
            base_key = cache.region_key(region.base)
            mask_of = lambda fp: cache.anchor_mask(  # noqa: E731
                region.base, fp, region_key=base_key
            )
        elif cache is not None:
            key = cache.region_key(region)
            mask_of = lambda fp: cache.anchor_mask(  # noqa: E731
                region, fp, region_key=key
            )
        else:
            compat = compatibility_masks(region)
            mask_of = lambda fp: valid_anchor_mask(  # noqa: E731
                region, sorted(fp.cells), compat
            )
        # anchor masks live in one contiguous "bank" (one row per shape of
        # every item) so the non-overlap narrowing after an imprint is one
        # batched fancy-index update instead of hundreds of small ones
        rows: List[np.ndarray] = []
        self._row_of: List[List[int]] = []
        off_chunks: List[np.ndarray] = []
        owner_chunks: List[np.ndarray] = []
        self._item_off_slice: List[Tuple[int, int]] = []
        offset_cursor = 0
        for item in self.items:
            row_ids = []
            start = offset_cursor
            for sid, fp in enumerate(item.module.shapes):
                mask = mask_of(fp)
                row_ids.append(len(rows))
                rows.append(mask.reshape(-1))
                off_chunks.append(item.cells[sid])
                owner_chunks.append(
                    np.full(len(item.cells[sid]), row_ids[-1], dtype=np.int64)
                )
                offset_cursor += len(item.cells[sid])
            self._row_of.append(row_ids)
            self._item_off_slice.append((start, offset_cursor))
        self.bank = np.stack(rows)  # (R, H*W) bool (a copy — cached masks
        # stay read-only; all dynamic narrowing mutates only the bank)
        #: all shape-cell offsets (dy, dx) concatenated, with their bank row
        self._all_offsets = np.concatenate(off_chunks)       # (TOT, 2)
        self._all_owners = np.concatenate(owner_chunks)      # (TOT,)
        #: offsets of still-unplaced items; placed items need no narrowing
        self._active_offsets = np.ones(len(self._all_owners), dtype=bool)
        if narrowed:
            # derive the sub-region masks from the base-region masks: an
            # anchor is newly invalid iff some footprint cell lands on a
            # blocked (frozen) cell.  The collide map is the OR-dual of the
            # mask cross-correlation, evaluated on the *flattened* blocked
            # map as big-int shift-ORs (one ~H*W-bit shift per footprint
            # cell, shared across rows with the same footprint): row-major
            # flattening lets a 2D shift by (dy, dx) become one 1D shift by
            # dy*W + dx.  The wraparound bits this smears across row edges
            # only land on anchors whose footprint already leaves the grid
            # — anchors the base mask marks invalid — so ANDing the result
            # into the bank stays exact.  Unlike a pairwise difference-of-
            # coordinates update (what _imprint uses for single placements)
            # the cost is independent of how many cells are blocked, which
            # is what makes narrowing by a whole frozen set cheap.
            if region.blocked_yx.size:
                blocked = np.zeros((self.H, self.W), dtype=bool)
                blocked[region.blocked_yx[:, 0], region.blocked_yx[:, 1]] = True
                blocked_bits = int.from_bytes(
                    np.packbits(blocked.reshape(-1), bitorder="little")
                    .tobytes(),
                    "little",
                )
                n = self.H * self.W
                keep_of: Dict[frozenset, np.ndarray] = {}
                row = 0
                for item in self.items:
                    for fp in item.module.shapes:
                        keep = keep_of.get(fp.cells)
                        if keep is None:
                            bits = 0
                            for dx, dy, _ in fp.cells:
                                bits |= blocked_bits >> (dy * self.W + dx)
                            keep = ~np.unpackbits(
                                np.frombuffer(
                                    bits.to_bytes((n + 7) // 8, "little"),
                                    np.uint8,
                                ),
                                bitorder="little",
                            )[:n].view(bool)
                            keep_of[fp.cells] = keep
                        self.bank[row] &= keep
                        row += 1
            cache.note_narrowed(self.bank.shape[0])
        #: per-construction cache accounting (None when built uncached)
        self.cache_stats: Optional[Dict[str, int]] = (
            cache.delta(snap) if cache is not None else None
        )
        if self.T is not None:
            # extrude the spatial bank over the horizon: tile each row T
            # times and clear the start ticks at which the shape would
            # outlive the horizon (t > T - duration) — the temporal M_a
            self._row_duration = np.concatenate(
                [
                    np.full(len(it.module.shapes), it.duration, dtype=np.int64)
                    for it in self.items
                ]
            )
            time_valid = (
                np.arange(self.T)[None, :]
                <= (self.T - self._row_duration)[:, None]
            )
            self.bank = (
                self.bank[:, None, :] & time_valid[:, :, None]
            ).reshape(len(self.bank), self.T * self._hw)
        #: static M_a & M_b anchors: per item, per shape, a bank-row view
        self.valid: List[List[np.ndarray]] = [
            [self.bank[r] for r in row_ids] for row_ids in self._row_of
        ]
        self.occupancy = np.zeros(
            self.H * self.W if self.T is None else self.T * self._hw,
            dtype=bool,
        )
        #: total cells available to modules, for the area argument
        #: (cell-ticks when a time axis is present)
        self._capacity = int(region.allowed_mask().sum()) * (self.T or 1)
        #: items needing re-filtering (indices); maintained via on_event
        self._dirty: set = set(range(len(self.items)))
        self._var_to_item = {}
        for it in self.items:
            for v in (it.x, it.y, it.s) + ((it.t,) if it.t is not None else ()):
                self._var_to_item[id(v)] = it.index

    def variables(self):
        out = []
        for it in self.items:
            out.extend((it.x, it.y, it.s))
            if it.t is not None:
                out.append(it.t)
        return out

    def on_event(self, var, event) -> bool:
        self._dirty.add(self._var_to_item[id(var)])
        return True

    # ------------------------------------------------------------------
    # Initial domain reduction
    # ------------------------------------------------------------------
    def post(self, engine: Engine) -> None:
        # clamp shape domains to the actual alternative count; anchors to grid
        for item in self.items:
            item.s.set_domain(
                item.s.domain.clamp(0, len(item.module.shapes) - 1), cause=None
            )
            item.x.set_domain(item.x.domain.clamp(0, self.W - 1), cause=None)
            item.y.set_domain(item.y.domain.clamp(0, self.H - 1), cause=None)
            if item.t is not None:
                item.t.set_domain(
                    item.t.domain.clamp(0, self.T - item.duration), cause=None
                )
        super().post(engine)

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _axis_masks(self, item: _Item) -> Tuple[np.ndarray, np.ndarray]:
        """Boolean arrays over columns/rows marking the x / y domains."""
        return (
            item.x.domain.to_bool_array(self.W),
            item.y.domain.to_bool_array(self.H),
        )

    def _shape_allowed(self, item: _Item, sid: int) -> np.ndarray:
        """Anchors of shape ``sid`` compatible with current domains.

        (H, W) for the spatial kernel, (T, H, W) with a time axis.
        """
        col, row = self._axis_masks(item)
        if item.t is None:
            mask = self.valid[item.index][sid].reshape(self.H, self.W)
            return mask & row[:, None] & col[None, :]
        mask = self.valid[item.index][sid].reshape(self.T, self.H, self.W)
        tmask = item.t.domain.to_bool_array(self.T)
        return mask & tmask[:, None, None] & row[None, :, None] & col[None, None, :]

    def _collisions(
        self, cells_yx: np.ndarray, keep: Optional[np.ndarray] = None
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Bank coordinates of anchors colliding with the given cells.

        For absolute cells ``(y, x)`` and every (still relevant) shape-cell
        offset, an anchor collides iff ``anchor = cell - offset`` lands in
        the grid — the vectorized difference-of-coordinates kernel.  Returns
        ``(rows, flat)`` suitable for fancy-indexing :attr:`bank`; ``keep``
        optionally restricts the offsets considered (offset indices into
        the concatenated offset table, e.g. the still-active ones).
        """
        off = self._all_offsets if keep is None else self._all_offsets[keep]
        owners = self._all_owners if keep is None else self._all_owners[keep]
        ay = cells_yx[:, 0][:, None] - off[None, :, 0]  # (n, TOT')
        ax = cells_yx[:, 1][:, None] - off[None, :, 1]
        ok = (ay >= 0) & (ax >= 0) & (ay < self.H) & (ax < self.W)
        flat = (ay * self.W + ax)[ok]
        rows = np.broadcast_to(owners, ok.shape)[ok]
        return rows, flat

    # ------------------------------------------------------------------
    # Propagation
    # ------------------------------------------------------------------
    def propagate(self, engine: Engine) -> None:
        # process only dirty items; imprinting re-dirties the rest.  The
        # dirty set is conservative across backtracking (stale entries just
        # cause a redundant re-filter, never unsoundness).  Wholesale mode
        # dirties everything up front — the re-filter-the-world behavior
        # kept as the differential oracle.
        if not self.incremental:
            self._dirty.update(range(len(self.items)))
        while self._dirty:
            idx = min(self._dirty)  # deterministic processing order
            self._dirty.discard(idx)
            item = self.items[idx]
            if item.placed:
                continue
            self.inc_stats.dirty += 1
            if item.is_fixed():
                self._imprint(engine, item)
            else:
                self._prune(item)
        # area argument: the remaining modules must fit the remaining cells
        # (cell-ticks when a time axis is present: area × duration)
        demand = int(self.occupancy.sum()) + sum(
            min(it.module.shapes[sid].area for sid in it.s.domain)
            * it.duration
            for it in self.items
            if not it.placed
        )
        if demand > self._capacity:
            raise Inconsistent(
                f"placement-kernel: area demand {demand} exceeds "
                f"capacity {self._capacity}"
            )
        tr = engine.tracer
        if tr is not None and tr.fine:
            tr.emit(GEOST_INCREMENTAL, **self.inc_stats.as_dict())
            if self.bitboard:
                tr.emit(
                    GEOST_BITBOARD,
                    rows_tested=self.inc_stats.rows_tested,
                    fallbacks=self.inc_stats.fallbacks,
                )

    def _imprint(self, engine: Engine, item: _Item) -> None:
        """Commit a fixed module: occupy cells, narrow other modules' masks."""
        sid = item.s.value()
        x0, y0 = item.x.value(), item.y.value()
        t0 = item.t.value() if item.t is not None else 0
        flat_valid = self.valid[item.index][sid]
        anchor_flat = y0 * self.W + x0
        if item.t is not None:
            anchor_flat += t0 * self._hw
        if not flat_valid[anchor_flat]:
            raise Inconsistent(
                f"placement-kernel: {item.module.name} anchored on an "
                f"incompatible or out-of-region tile"
            )
        cells = item.cells[sid]  # (n, 2) of (dy, dx)
        idx = (y0 + cells[:, 0]) * self.W + (x0 + cells[:, 1])
        if item.t is not None:
            # occupy the cells for every resident tick [t0, t0 + duration)
            idx = (
                (t0 + np.arange(item.duration))[:, None] * self._hw
                + idx[None, :]
            ).reshape(-1)
        if self.occupancy[idx].any():
            raise Inconsistent(
                f"placement-kernel: {item.module.name} overlaps placed material"
            )
        self.occupancy[idx] = True
        item.placed = True
        self.inc_stats.rasterized += 1
        if engine.tracer is not None:
            if item.t is not None:
                engine.tracer.emit(
                    KERNEL_IMPRINT,
                    module=item.module.name, shape=sid, x=x0, y=y0, t=t0,
                )
            else:
                engine.tracer.emit(
                    KERNEL_IMPRINT, module=item.module.name, shape=sid, x=x0, y=y0
                )

        occ = self.occupancy
        active = self._active_offsets
        lo, hi = self._item_off_slice[item.index]
        active[lo:hi] = False  # this item's masks need no further narrowing

        def undo_imprint(idx=idx, item=item, lo=lo, hi=hi) -> None:
            occ[idx] = False
            active[lo:hi] = True
            item.placed = False

        engine.trail.push(undo_imprint)

        # narrow every unplaced module's anchor masks in one batched update:
        # an anchor (X, Y) of a shape collides iff (Y, X) = cell - offset
        # for some imprinted cell and some cell offset of that shape
        for other in self.items:
            if not other.placed:
                self._dirty.add(other.index)
        keep = np.nonzero(active)[0]
        cells_yx = np.stack([y0 + cells[:, 0], x0 + cells[:, 1]], axis=1)
        rows, flat = self._collisions(cells_yx, keep)
        if item.t is not None and rows.size:
            # expand each colliding *spatial* anchor over the start ticks
            # at which the other shape would be resident together with
            # this one: [t0 - d_other + 1, t0 + d0 - 1], clamped to the
            # horizon (a ragged range per collision, flattened via repeat)
            d_other = self._row_duration[rows]
            t_lo = np.maximum(0, t0 - d_other + 1)
            t_hi = min(self.T - 1, t0 + item.duration - 1)
            counts = t_hi - t_lo + 1
            total = int(counts.sum())
            steps = np.arange(total) - np.repeat(
                np.cumsum(counts) - counts, counts
            )
            ticks = np.repeat(t_lo, counts) + steps
            flat = ticks * self._hw + np.repeat(flat, counts)
            rows = np.repeat(rows, counts)
        bank = self.bank
        was_valid = bank[rows, flat]
        rows_hit = rows[was_valid]
        flat_hit = flat[was_valid]
        if rows_hit.size:
            bank[rows_hit, flat_hit] = False
            self._rev.bump()
            rev = self._rev

            def undo_mask(rows_hit=rows_hit, flat_hit=flat_hit) -> None:
                bank[rows_hit, flat_hit] = True
                rev.bump()

            engine.trail.push(undo_mask)

    def _prune(self, item: _Item) -> bool:
        """Per-axis domain consistency for one unfixed module."""
        if self.bitboard:
            return self._prune_batched(item)
        union: Optional[np.ndarray] = None
        keep_shapes: List[int] = []
        for sid in item.s.domain:
            allowed = self._shape_allowed(item, sid)
            if allowed.any():
                keep_shapes.append(sid)
                union = allowed if union is None else (union | allowed)
        if union is None:
            raise Inconsistent(
                f"placement-kernel: {item.module.name} has no feasible anchor"
            )
        changed = item.s.set_domain(Domain(keep_shapes), cause=self)
        changed |= self._narrow_axes(item, union)
        # our own updates re-enter the dirty set through on_event (the
        # engine notifies self-caused events precisely so dirty-set
        # propagators see their own prunings), so a collapse to a full
        # placement is picked up by the same run and imprinted
        return changed

    def _narrow_axes(self, item: _Item, union: np.ndarray) -> bool:
        """Project the anchor union onto each axis domain (x, y and t)."""
        if item.t is None:
            cols = Domain.from_bool_array(union.any(axis=0))
            rows = Domain.from_bool_array(union.any(axis=1))
        else:
            cols = Domain.from_bool_array(union.any(axis=(0, 1)))
            rows = Domain.from_bool_array(union.any(axis=(0, 2)))
        changed = item.x.set_domain(
            item.x.domain.intersect(cols), cause=self
        )
        changed |= item.y.set_domain(
            item.y.domain.intersect(rows), cause=self
        )
        if item.t is not None:
            ticks = Domain.from_bool_array(union.any(axis=(1, 2)))
            changed |= item.t.set_domain(
                item.t.domain.intersect(ticks), cause=self
            )
        return changed

    def _prune_batched(self, item: _Item) -> bool:
        """:meth:`_prune` with all candidate shapes reduced in one pass.

        Same boolean algebra as the per-shape loop — per-shape feasibility
        is the row-wise ``any`` of the stacked (mask & domain) bank rows
        and the union is the ``any`` over feasible rows — so the resulting
        domains, error conditions and messages are identical.
        """
        sids = list(item.s.domain)
        row_ids = [self._row_of[item.index][sid] for sid in sids]
        col, row = self._axis_masks(item)
        axes = (row[:, None] & col[None, :]).reshape(-1)
        if item.t is not None:
            tmask = item.t.domain.to_bool_array(self.T)
            axes = (
                tmask[:, None, None]
                & row[None, :, None]
                & col[None, None, :]
            ).reshape(-1)
        sub = self.bank[row_ids] & axes[None, :]
        self.inc_stats.rows_tested += len(sids)
        feasible = sub.any(axis=1)
        keep_shapes = [sid for sid, ok in zip(sids, feasible) if ok]
        if not keep_shapes:
            raise Inconsistent(
                f"placement-kernel: {item.module.name} has no feasible anchor"
            )
        shape = (
            (self.H, self.W)
            if item.t is None
            else (self.T, self.H, self.W)
        )
        union = sub[feasible].any(axis=0).reshape(shape)
        changed = item.s.set_domain(Domain(keep_shapes), cause=self)
        changed |= self._narrow_axes(item, union)
        return changed

    # ------------------------------------------------------------------
    # Queries used by branching and reporting
    # ------------------------------------------------------------------
    def anchors_for(self, index: int) -> List[Tuple[int, int, int]]:
        """Feasible (shape, x, y) triples of one module, bottom-left first.

        Sorted by x, then y, then shape index — the value order that drives
        the min-extent objective fastest (Eq. 6 minimizes the x extent).
        """
        item = self.items[index]
        if item.t is not None:
            # temporal kernel: (shape, x, y, t) quadruples, earliest first
            quads: List[Tuple[int, int, int, int]] = []
            for sid in item.s.domain:
                ts_, ys, xs = np.nonzero(self._shape_allowed(item, sid))
                quads.extend(
                    (sid, int(x), int(y), int(t))
                    for x, y, t in zip(xs.tolist(), ys.tolist(), ts_.tolist())
                )
            quads.sort(key=lambda q: (q[3], q[1], q[2], q[0]))
            return quads
        out: List[Tuple[int, int, int]] = []
        for sid in item.s.domain:
            allowed = self._shape_allowed(item, sid)
            ys, xs = np.nonzero(allowed)
            out.extend(
                (sid, int(x), int(y)) for x, y in zip(xs.tolist(), ys.tolist())
            )
        out.sort(key=lambda t: (t[1], t[2], t[0]))
        return out

    def anchor_count(self, index: int) -> int:
        """Feasible anchors over all candidate shapes of one module.

        The fail-first branching heuristic asks this for every unfixed
        module at every node; in incremental mode the answer is cached and
        served as long as the mask bank (revision stamp) and all three
        domains (identity — Domains are immutable and restored by
        reference on backtrack, so holding them pins their ids) are the
        ones the entry was computed from.
        """
        item = self.items[index]
        xd, yd, sd = item.x.domain, item.y.domain, item.s.domain
        td = item.t.domain if item.t is not None else None
        if self.incremental:
            entry = self._count_cache.get(index)
            if (
                entry is not None
                and entry[0] == self._rev.current
                and entry[1] is xd
                and entry[2] is yd
                and entry[3] is sd
                and entry[5] is td
            ):
                self.inc_stats.reused += 1
                return entry[4]
        col, row = self._axis_masks(item)
        if item.t is not None:
            # temporal kernel: same boolean algebra as the batched prune,
            # summed instead of unioned (count_anchors is 2-D-specific)
            row_ids = [self._row_of[item.index][sid] for sid in sd]
            axes = (
                item.t.domain.to_bool_array(self.T)[:, None, None]
                & row[None, :, None]
                & col[None, None, :]
            ).reshape(-1)
            count = int((self.bank[row_ids] & axes[None, :]).sum())
            self.inc_stats.rows_tested += 1
        elif self.bitboard:
            row_ids = [self._row_of[item.index][sid] for sid in sd]
            stack = self.bank[row_ids].reshape(-1, self.H, self.W)
            count = int(count_anchors_batch(stack, col, row).sum())
            self.inc_stats.rows_tested += 1
        else:
            count = sum(
                count_anchors(
                    self.valid[item.index][sid].reshape(self.H, self.W),
                    col, row,
                )
                for sid in sd
            )
        if self.incremental:
            self._count_cache[index] = (
                self._rev.current, xd, yd, sd, count, td,
            )
        return count

    def occupied_mask(self) -> np.ndarray:
        """(H, W) occupancy, or the (T, H, W) volume for temporal runs."""
        if self.T is not None:
            return self.occupancy.reshape(self.T, self.H, self.W).copy()
        return self.occupancy.reshape(self.H, self.W).copy()

    def placements(self) -> List[PlacedModule]:
        """The currently fixed modules as placement records."""
        out = []
        for item in self.items:
            if item.is_fixed():
                out.append(
                    PlacedModule(
                        item.module,
                        item.s.value(),
                        item.x.value(),
                        item.y.value(),
                        item.t.value() if item.t is not None else None,
                    )
                )
        return out

"""NumPy occupancy bitboards: the geost raster fast path.

Fixed material — resource-typed forbidden regions known at post time, and
the footprints of objects whose placement has become fully fixed during
search — never moves while it exists, yet the wholesale kernel re-derives
one forbidden anchor box per (shifted box, obstacle) pair for it on every
wake-up and scans those boxes point by point inside the sweep.  This module
rasterizes such material *once* into k-dimensional boolean occupancy planes
over the anchor-reachable window; a candidate sweep point is then tested by
slicing the planes under the shape's shifted boxes — one vectorized mask
intersection per shifted box — instead of per-box containment loops.

Two levels of raster testing are offered:

* :meth:`OccupancyBitboard.probe_for_shape` — the per-point probe of the
  scalar sweep (PR 5's fast path, kept as part of the oracle ladder), and
* :meth:`OccupancyBitboard.forbidden_anchor_lattice` — the bitboard-first
  sweep: the forbidden-anchor set of one shape over a whole anchor
  lattice, evaluated as sliding-box counts against summed-area tables
  (:func:`repro.fabric.masks.sliding_box_counts`), so whole candidate
  rows/frontiers are tested by mask intersection with no per-point Python
  loop at all.  Dynamic material (compulsory parts of unfixed objects) is
  stamped into a throwaway copy via :meth:`combined_occupancy`; typed
  planes are static after post time, so their tables are built once and
  cached.

Resource typing follows the paper's extension: ``planes[None]`` holds
material that blocks every shifted box (fixed objects' footprints, untyped
forbidden regions) while ``planes[rt]`` holds material that blocks only
shifted boxes of resource ``rt``, so heterogeneous fabric rasterizes into
one plane per resource type actually used.

Everything outside the window counts as free.  That is sound because the
window covers every cell any object can touch — per dimension it spans
``[min(anchor_min + offset), max(anchor_max + offset + size))`` over the
anchor bounds at construction time — and anchor bounds only shrink during
search, so a probed cell ``p + offset`` never leaves the window.  Material
clipped away (e.g. the sentinel walls far outside the fabric) can therefore
never block a probed point, and the explicit-box path it came from would
not have either.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cp.trail import Trail
from repro.fabric.masks import integral_occupancy, sliding_box_counts
from repro.fabric.resource import ResourceType
from repro.geost.boxes import Box, ShiftedBox
from repro.geost.forbidden import ForbiddenRegion, anchor_forbidden_box
from repro.geost.objects import GeostObject
from repro.geost.sweep import RasterProbe


def anchor_window(objects: Sequence[GeostObject]) -> Box:
    """The box of cells reachable by any object under current anchor bounds."""
    if not objects:
        raise ValueError("anchor window needs at least one object")
    k = objects[0].dim
    lo = [None] * k
    hi = [None] * k
    for obj in objects:
        amin, amax = obj.anchor_min(), obj.anchor_max()
        for sid in obj.candidate_shapes():
            for sbox in obj.shape(sid).boxes:
                for d in range(k):
                    cell_lo = amin[d] + sbox.offset[d]
                    cell_hi = amax[d] + sbox.offset[d] + sbox.size[d]
                    if lo[d] is None or cell_lo < lo[d]:
                        lo[d] = cell_lo
                    if hi[d] is None or cell_hi > hi[d]:
                        hi[d] = cell_hi
    return Box(tuple(lo), tuple(h - l for l, h in zip(lo, hi)))


class OccupancyBitboard:
    """k-dimensional boolean occupancy planes over a fixed window.

    Static material is rasterized with :meth:`add_region`; search-time
    material (fixed objects) is stamped with :meth:`imprint`, which trails
    an undo restoring the exact previous cells so the board rolls back
    with chronological backtracking.
    """

    __slots__ = ("window", "_origin", "_shape", "_planes", "_typed_tables")

    def __init__(self, window: Box) -> None:
        self.window = window
        self._origin = window.origin
        self._shape = window.size
        #: occupancy per resource key; created lazily, ``None`` blocks all
        self._planes: Dict[Optional[ResourceType], np.ndarray] = {}
        #: cached summed-area tables of the *typed* planes; sound to cache
        #: because only ``plane[None]`` ever changes after post time
        #: (imprints are all-blocking), while :meth:`add_region` clears it
        self._typed_tables: Dict[ResourceType, np.ndarray] = {}

    # ------------------------------------------------------------------
    def _plane(self, key: Optional[ResourceType]) -> np.ndarray:
        plane = self._planes.get(key)
        if plane is None:
            plane = self._planes[key] = np.zeros(self._shape, dtype=bool)
        return plane

    def _slices(self, clipped: Box) -> Tuple[slice, ...]:
        return tuple(
            slice(o - w, o - w + s)
            for o, s, w in zip(clipped.origin, clipped.size, self._origin)
        )

    # ------------------------------------------------------------------
    def add_region(self, region: ForbiddenRegion) -> None:
        """Rasterize a static forbidden region (clipped to the window)."""
        clipped = region.box.intersection(self.window)
        if clipped is None:
            return
        self._plane(region.resource)[self._slices(clipped)] = True
        if region.resource is not None:
            self._typed_tables.pop(region.resource, None)

    def imprint(self, boxes: Sequence[Box], trail: Optional[Trail] = None) -> None:
        """Stamp all-blocking material; trail an undo when ``trail`` given."""
        plane = self._plane(None)
        for box in boxes:
            clipped = box.intersection(self.window)
            if clipped is None:
                continue
            idx = self._slices(clipped)
            if trail is not None:
                prev = plane[idx].copy()
                trail.push(
                    lambda plane=plane, idx=idx, prev=prev: plane.__setitem__(
                        idx, prev
                    )
                )
            plane[idx] = True

    # ------------------------------------------------------------------
    def blocking_cell(
        self, sbox: ShiftedBox, anchor: Tuple[int, ...]
    ) -> Optional[Tuple[int, ...]]:
        """An occupied cell under ``sbox`` placed at ``anchor``, or ``None``.

        Tests ``planes[None] | planes[sbox.resource]`` under the absolute
        box — the rasterized equivalent of the explicit-box containment
        test, since a cell blocks the shifted box iff it is all-blocking or
        resource-matching (:meth:`ForbiddenRegion.blocks`).
        """
        lo = tuple(a + f for a, f in zip(anchor, sbox.offset))
        clo = tuple(max(l, w) for l, w in zip(lo, self._origin))
        chi = tuple(
            min(l + s, w + t)
            for l, s, w, t in zip(lo, sbox.size, self._origin, self._shape)
        )
        if any(a >= b for a, b in zip(clo, chi)):
            return None
        idx = tuple(
            slice(a - w, b - w) for a, b, w in zip(clo, chi, self._origin)
        )
        combined: Optional[np.ndarray] = None
        keys: Tuple[Optional[ResourceType], ...] = (
            (None,) if sbox.resource is None else (None, sbox.resource)
        )
        for key in keys:
            plane = self._planes.get(key)
            if plane is None:
                continue
            sub = plane[idx]
            combined = sub if combined is None else (combined | sub)
        if combined is None or not combined.any():
            return None
        local = np.unravel_index(int(np.argmax(combined)), combined.shape)
        return tuple(int(i) + a for i, a in zip(local, clo))

    def probe_for_shape(self, sboxes: Sequence[ShiftedBox]) -> RasterProbe:
        """A sweep raster probe testing one shape's boxes against the board.

        A hit is converted back into a forbidden *anchor* box by treating
        the blocking cell as a unit obstacle — the box of all anchors at
        which the shifted box would cover that cell — so the sweep can jump
        past it exactly as it does for explicit forbidden boxes.
        """
        k = len(self._origin)
        unit = (1,) * k

        def probe(p: Tuple[int, ...]) -> Optional[Box]:
            for sbox in sboxes:
                cell = self.blocking_cell(sbox, p)
                if cell is not None:
                    return anchor_forbidden_box(sbox, Box(cell, unit))
            return None

        return probe

    # ------------------------------------------------------------------
    # Bitboard-first sweep: whole-lattice forbidden-anchor evaluation
    # ------------------------------------------------------------------
    def typed_integral(self, key: ResourceType) -> Optional[np.ndarray]:
        """Cached summed-area table of the typed plane, ``None`` if empty."""
        table = self._typed_tables.get(key)
        if table is None:
            plane = self._planes.get(key)
            if plane is None:
                return None
            table = self._typed_tables[key] = integral_occupancy(plane)
        return table

    def combined_occupancy(self, extra_boxes: Sequence[Box]) -> np.ndarray:
        """The all-blocking plane plus ``extra_boxes`` stamped in, as a copy.

        This is how the compulsory parts of *other* unfixed objects enter
        the bitboard sweep: they block every shifted box of the swept
        object regardless of resource, exactly like a fixed imprint, but
        they move between wake-ups and so are stamped into a throwaway
        copy rather than the trailed plane.
        """
        plane = self._planes.get(None)
        occ = (
            plane.copy() if plane is not None
            else np.zeros(self._shape, dtype=bool)
        )
        for box in extra_boxes:
            clipped = box.intersection(self.window)
            if clipped is None:
                continue
            occ[self._slices(clipped)] = True
        return occ

    def forbidden_anchor_lattice(
        self,
        sboxes: Sequence[ShiftedBox],
        bounds: Sequence[Tuple[int, int]],
        all_integral: np.ndarray,
    ) -> np.ndarray:
        """Boolean forbidden mask over one shape's whole anchor lattice.

        ``bounds[d] = (lo, hi)`` are the inclusive anchor bounds per
        dimension; entry ``a`` of the result is True iff placing the shape
        at anchor ``bounds_lo + a`` covers an occupied cell — the exact
        per-point predicate of :meth:`blocking_cell`, evaluated for the
        entire lattice with ``2k`` table subtractions per shifted box.
        ``all_integral`` is the :func:`integral_occupancy` of
        :meth:`combined_occupancy` (all-blocking material); typed planes
        are folded in from their cached tables.
        """
        counts = tuple(hi - lo + 1 for lo, hi in bounds)
        total: Optional[np.ndarray] = None
        for sbox in sboxes:
            starts = tuple(
                lo + f - w
                for (lo, _), f, w in zip(bounds, sbox.offset, self._origin)
            )
            hits = sliding_box_counts(all_integral, starts, sbox.size, counts)
            if sbox.resource is not None:
                typed = self.typed_integral(sbox.resource)
                if typed is not None:
                    hits = hits + sliding_box_counts(
                        typed, starts, sbox.size, counts
                    )
            forb = hits > 0
            total = forb if total is None else (total | forb)
        if total is None:
            return np.zeros(counts, dtype=bool)
        return total

    # ------------------------------------------------------------------
    def occupied_count(self) -> int:
        """Total occupied cells across planes (tests / debugging)."""
        return sum(int(p.sum()) for p in self._planes.values())

"""k-dimensional boxes.

geost's primitives: a :class:`Box` is an axis-aligned half-open region
``[origin, origin + size)``; a :class:`ShiftedBox` is a box expressed
relative to an object's anchor, optionally carrying a *resource type* —
the extension the paper adds so boxes can be matched against heterogeneous
fabric resources ("the geost definition of a box is extended with a
resource property", Section IV).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Tuple

from repro.fabric.resource import ResourceType


@dataclass(frozen=True)
class Box:
    """Axis-aligned half-open box ``[origin, origin + size)``."""

    origin: Tuple[int, ...]
    size: Tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.origin) != len(self.size):
            raise ValueError("origin and size must have equal dimension")
        if not self.origin:
            raise ValueError("boxes must have at least one dimension")
        if any(s <= 0 for s in self.size):
            raise ValueError(f"box sides must be positive, got {self.size}")

    @property
    def dim(self) -> int:
        return len(self.origin)

    @property
    def end(self) -> Tuple[int, ...]:
        return tuple(o + s for o, s in zip(self.origin, self.size))

    def volume(self) -> int:
        v = 1
        for s in self.size:
            v *= s
        return v

    def contains_point(self, p: Tuple[int, ...]) -> bool:
        return all(o <= x < o + s for x, o, s in zip(p, self.origin, self.size))

    def intersects(self, other: "Box") -> bool:
        return all(
            a < b + t and b < a + s
            for a, s, b, t in zip(self.origin, self.size, other.origin, other.size)
        )

    def intersection(self, other: "Box") -> Optional["Box"]:
        lo = tuple(max(a, b) for a, b in zip(self.origin, other.origin))
        hi = tuple(min(a, b) for a, b in zip(self.end, other.end))
        if any(h <= l for l, h in zip(lo, hi)):
            return None
        return Box(lo, tuple(h - l for l, h in zip(lo, hi)))

    def translated(self, delta: Tuple[int, ...]) -> "Box":
        return Box(tuple(o + d for o, d in zip(self.origin, delta)), self.size)

    def reflected(self) -> "Box":
        """Reflection through the origin: the cells ``{-c | c in box}``.

        ``[o, o + s)`` maps to ``[-(o + s - 1), -o + 1)``, same size.  Used
        by the sweep to reduce ``sweep_max`` to ``sweep_min``; reflection is
        an involution (``b.reflected().reflected() == b``).
        """
        return Box(
            tuple(-(o + s - 1) for o, s in zip(self.origin, self.size)),
            self.size,
        )

    def points(self) -> Iterator[Tuple[int, ...]]:
        """Iterate lattice points (tests / tiny boxes only)."""
        def rec(prefix: Tuple[int, ...], d: int) -> Iterator[Tuple[int, ...]]:
            if d == self.dim:
                yield prefix
                return
            for v in range(self.origin[d], self.origin[d] + self.size[d]):
                yield from rec(prefix + (v,), d + 1)

        return rec((), 0)


@dataclass(frozen=True)
class ShiftedBox:
    """A box relative to an object anchor, with an optional resource type."""

    offset: Tuple[int, ...]
    size: Tuple[int, ...]
    #: the paper's extension: which fabric resource these cells must map to
    resource: Optional[ResourceType] = None

    def __post_init__(self) -> None:
        if len(self.offset) != len(self.size):
            raise ValueError("offset and size must have equal dimension")
        if any(s <= 0 for s in self.size):
            raise ValueError(f"shifted-box sides must be positive, got {self.size}")

    @property
    def dim(self) -> int:
        return len(self.offset)

    def at(self, anchor: Tuple[int, ...]) -> Box:
        """The absolute box when the object anchor is placed at ``anchor``."""
        return Box(
            tuple(a + o for a, o in zip(anchor, self.offset)), self.size
        )

    def volume(self) -> int:
        v = 1
        for s in self.size:
            v *= s
        return v

"""Geometric constraint kernel (geost) with resource extensions.

The paper builds its placer on the geost kernel of Beldiceanu et al. [8]:
objects with polymorphic shapes (a *shape variable* selects among
alternatives), shapes made of shifted boxes, and a sweep-based non-overlap
propagator.  It then extends geost with (1) a resource property on boxes
and (2) resource-typed forbidden regions, so a heterogeneous FPGA can be
modelled (Section IV).

This package contains both layers:

* a faithful, k-dimensional, interval-based geost propagator
  (:mod:`repro.geost.kernel`, :mod:`repro.geost.sweep`,
  :mod:`repro.geost.forbidden`) used for small models and as a reference
  semantics, and
* the resource-extended, NumPy-vectorized placement kernel
  (:mod:`repro.geost.placement`) that the FPGA placer uses: per-shape
  valid-anchor bitmaps (resource compatibility = the forbidden-region
  extension) plus occupancy-based non-overlap pruning.
"""

from repro.geost.boxes import Box, ShiftedBox
from repro.geost.shapes import GeostShape, ShapeTable
from repro.geost.objects import GeostObject
from repro.geost.kernel import Geost
from repro.geost.placement import PlacementKernel, PlacedModule

__all__ = [
    "Box",
    "ShiftedBox",
    "GeostShape",
    "ShapeTable",
    "GeostObject",
    "Geost",
    "PlacementKernel",
    "PlacedModule",
]

"""The geost sweep-point algorithm.

Bounds filtering for one object: find the lexicographically smallest (or
largest) anchor point, with a chosen dimension most significant, that is
feasible for *at least one* candidate shape — i.e. not covered by that
shape's forbidden anchor boxes.  When the point under inspection is
infeasible for every shape, each shape yields a forbidden box containing
it; the intersection of those boxes is a region that is infeasible for
*all* shapes, so the sweep jumps past it (odometer-style) instead of
stepping by one.  This is the essence of Beldiceanu et al.'s k-dimensional
sweep, specialized to interval (bounds) domains.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.geost.boxes import Box

#: inclusive per-dimension bounds of the anchor search space
Bounds = Sequence[Tuple[int, int]]


def _covering_intersection(
    p: Tuple[int, ...], per_shape_boxes: Sequence[Sequence[Box]]
) -> Optional[Box]:
    """If ``p`` is infeasible for every shape, a box around ``p`` that is
    infeasible for every shape; ``None`` if ``p`` is feasible for some shape.
    """
    cover: Optional[Box] = None
    for boxes in per_shape_boxes:
        found = None
        for b in boxes:
            if b.contains_point(p):
                found = b
                break
        if found is None:
            return None  # p feasible for this shape
        cover = found if cover is None else cover.intersection(found)
        # intersection always contains p, hence is never None
    return cover


def sweep_min(
    bounds: Bounds,
    per_shape_boxes: Sequence[Sequence[Box]],
    dim: int,
) -> Optional[Tuple[int, ...]]:
    """Smallest feasible point with ``dim`` as the most significant axis.

    Returns ``None`` when no feasible point exists in ``bounds``.  The
    returned point's ``dim`` coordinate is the new lower bound for that
    anchor variable.
    """
    k = len(bounds)
    if not per_shape_boxes:
        raise ValueError("at least one candidate shape is required")
    order = [dim] + [d for d in range(k) if d != dim]  # most significant first
    p = [lo for lo, _ in bounds]
    if any(lo > hi for lo, hi in bounds):
        return None
    while True:
        cover = _covering_intersection(tuple(p), per_shape_boxes)
        if cover is None:
            return tuple(p)
        # jump past the covering region along the least significant axis,
        # carrying into more significant axes odometer-style
        for pos in range(k - 1, -1, -1):
            d = order[pos]
            nxt = cover.end[d] if pos == k - 1 else p[d] + 1
            # only the least significant axis can use the full jump; more
            # significant axes advance by one step when carrying
            if pos == k - 1:
                p[d] = max(nxt, p[d] + 1)
            else:
                p[d] = nxt
            if p[d] <= bounds[d][1]:
                # reset all less significant axes to their minima
                for q in range(pos + 1, k):
                    p[order[q]] = bounds[order[q]][0]
                break
            if pos == 0:
                return None  # most significant axis overflowed


def sweep_max(
    bounds: Bounds,
    per_shape_boxes: Sequence[Sequence[Box]],
    dim: int,
) -> Optional[Tuple[int, ...]]:
    """Mirror of :func:`sweep_min`: largest feasible point on axis ``dim``.

    Implemented by reflecting the search space through the origin and
    reusing :func:`sweep_min` — reflection maps box ``[o, o+s)`` to
    ``[-o-s+1, -o+1)`` i.e. origin ``-(o+s-1)``, same size.
    """
    refl_bounds = [(-hi, -lo) for lo, hi in bounds]
    refl_shapes = [
        [
            Box(
                tuple(-(o + s - 1) for o, s in zip(b.origin, b.size)),
                b.size,
            )
            for b in boxes
        ]
        for boxes in per_shape_boxes
    ]
    p = sweep_min(refl_bounds, refl_shapes, dim)
    if p is None:
        return None
    return tuple(-v for v in p)


def point_feasible(
    p: Tuple[int, ...], per_shape_boxes: Sequence[Sequence[Box]]
) -> bool:
    """Is ``p`` outside the forbidden boxes of at least one shape?"""
    return _covering_intersection(p, per_shape_boxes) is None

"""The geost sweep-point algorithm.

Bounds filtering for one object: find the lexicographically smallest (or
largest) anchor point, with a chosen dimension most significant, that is
feasible for *at least one* candidate shape — i.e. not covered by that
shape's forbidden anchor boxes.  When the point under inspection is
infeasible for every shape, each shape yields a forbidden box containing
it; the intersection of those boxes is a region that is infeasible for
*all* shapes, so the sweep jumps past it (odometer-style) instead of
stepping by one.  This is the essence of Beldiceanu et al.'s k-dimensional
sweep, specialized to interval (bounds) domains.

Two refinements over the textbook version:

* Among the forbidden boxes covering the sweep point, each shape reports
  the one with *maximal* ``end`` along the sweep's least-significant axis
  (not the first hit), so the covering intersection — and hence the
  odometer jump — is as wide as possible.  The choice never changes the
  sweep's result, only how many points it inspects: any covering box is a
  sound jump, and the returned point is the exact lexicographic extremum
  either way.
* A shape's forbidden space may be backed partly by a rasterized
  :class:`~repro.geost.bitboard.OccupancyBitboard` (fixed material tested
  by mask intersection) instead of explicit boxes; :class:`ShapeView`
  folds both sources behind one ``covering_box`` query.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple, Union

from repro.geost.boxes import Box

#: inclusive per-dimension bounds of the anchor search space
Bounds = Sequence[Tuple[int, int]]

#: raster fast-path probe: maps an anchor point to a covering forbidden box
#: derived from rasterized occupancy, or ``None`` when the rasterized
#: material does not forbid the point
RasterProbe = Callable[[Tuple[int, ...]], Optional[Box]]


@dataclass
class SweepStats:
    """Sweep-point accounting, shared across calls (tests / benchmarks).

    The two counters measure the two sweep generations: the scalar
    odometer sweep pays one Python-level ``iterations`` tick per point it
    inspects, while the bitboard-first sweep pays one ``rows`` tick per
    vectorized frontier scan (a whole-lattice reduction replacing an
    entire run of per-point inspections).  Regression tests pin
    ``rows < iterations`` on the Table-I instances so a silent fallback
    to the scalar path fails loudly.
    """

    #: points inspected (one covering-intersection query each)
    iterations: int = 0
    #: vectorized frontier scans (bitboard sweep; zero in scalar mode)
    rows: int = 0


class ShapeView:
    """The forbidden anchor space of one candidate shape.

    A point is infeasible for the shape iff it lies in one of the explicit
    forbidden ``boxes`` *or* the optional ``raster`` probe reports a hit.
    :meth:`covering_box` returns a forbidden box containing the query
    point — preferring maximal ``end`` along ``jump_dim`` — or ``None``
    when the point is feasible for this shape.

    The raster probe always speaks *original* (unreflected) anchor space;
    :meth:`reflected` views reflect the query point before probing and the
    returned box after, so :func:`sweep_max` can reuse the probe unchanged.
    """

    __slots__ = ("boxes", "raster", "_reflect")

    def __init__(
        self,
        boxes: Sequence[Box],
        raster: Optional[RasterProbe] = None,
        _reflect: bool = False,
    ) -> None:
        self.boxes = list(boxes)
        self.raster = raster
        self._reflect = _reflect

    def reflected(self) -> "ShapeView":
        """This forbidden space reflected through the origin."""
        return ShapeView(
            [b.reflected() for b in self.boxes], self.raster, not self._reflect
        )

    def covering_box(self, p: Tuple[int, ...], jump_dim: int) -> Optional[Box]:
        best: Optional[Box] = None
        for b in self.boxes:
            if b.contains_point(p) and (
                best is None or b.end[jump_dim] > best.end[jump_dim]
            ):
                best = b
        if self.raster is not None:
            hit = self.raster(tuple(-x for x in p) if self._reflect else p)
            if hit is not None:
                if self._reflect:
                    hit = hit.reflected()
                if best is None or hit.end[jump_dim] > best.end[jump_dim]:
                    best = hit
        return best


#: what the sweep accepts per shape: bare forbidden boxes or a full view
ShapeInput = Union[Sequence[Box], ShapeView]


def _as_views(per_shape: Sequence[ShapeInput]) -> List[ShapeView]:
    return [s if isinstance(s, ShapeView) else ShapeView(s) for s in per_shape]


def _covering_intersection(
    p: Tuple[int, ...], views: Sequence[ShapeView], jump_dim: int
) -> Optional[Box]:
    """If ``p`` is infeasible for every shape, a box around ``p`` that is
    infeasible for every shape; ``None`` if ``p`` is feasible for some shape.
    """
    cover: Optional[Box] = None
    for view in views:
        found = view.covering_box(p, jump_dim)
        if found is None:
            return None  # p feasible for this shape
        cover = found if cover is None else cover.intersection(found)
        # intersection always contains p, hence is never None
    return cover


def sweep_min(
    bounds: Bounds,
    per_shape_boxes: Sequence[ShapeInput],
    dim: int,
    stats: Optional[SweepStats] = None,
) -> Optional[Tuple[int, ...]]:
    """Smallest feasible point with ``dim`` as the most significant axis.

    Returns ``None`` when no feasible point exists in ``bounds``.  The
    returned point's ``dim`` coordinate is the new lower bound for that
    anchor variable.
    """
    k = len(bounds)
    if not per_shape_boxes:
        raise ValueError("at least one candidate shape is required")
    views = _as_views(per_shape_boxes)
    order = [dim] + [d for d in range(k) if d != dim]  # most significant first
    jump_dim = order[-1]
    p = [lo for lo, _ in bounds]
    if any(lo > hi for lo, hi in bounds):
        return None
    while True:
        if stats is not None:
            stats.iterations += 1
        cover = _covering_intersection(tuple(p), views, jump_dim)
        if cover is None:
            return tuple(p)
        # jump past the covering region along the least significant axis,
        # carrying into more significant axes odometer-style
        for pos in range(k - 1, -1, -1):
            d = order[pos]
            nxt = cover.end[d] if pos == k - 1 else p[d] + 1
            # only the least significant axis can use the full jump; more
            # significant axes advance by one step when carrying
            if pos == k - 1:
                p[d] = max(nxt, p[d] + 1)
            else:
                p[d] = nxt
            if p[d] <= bounds[d][1]:
                # reset all less significant axes to their minima
                for q in range(pos + 1, k):
                    p[order[q]] = bounds[order[q]][0]
                break
            if pos == 0:
                return None  # most significant axis overflowed


def sweep_max(
    bounds: Bounds,
    per_shape_boxes: Sequence[ShapeInput],
    dim: int,
    stats: Optional[SweepStats] = None,
) -> Optional[Tuple[int, ...]]:
    """Mirror of :func:`sweep_min`: largest feasible point on axis ``dim``.

    Implemented by reflecting the search space through the origin and
    reusing :func:`sweep_min` (see :meth:`Box.reflected`).
    """
    refl_bounds = [(-hi, -lo) for lo, hi in bounds]
    refl_views = [v.reflected() for v in _as_views(per_shape_boxes)]
    p = sweep_min(refl_bounds, refl_views, dim, stats)
    if p is None:
        return None
    return tuple(-v for v in p)


def point_feasible(
    p: Tuple[int, ...], per_shape_boxes: Sequence[ShapeInput]
) -> bool:
    """Is ``p`` outside the forbidden boxes of at least one shape?"""
    return _covering_intersection(p, _as_views(per_shape_boxes), 0) is None

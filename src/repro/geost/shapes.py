"""geost shapes and the shared shape table.

A :class:`GeostShape` is a non-empty set of shifted boxes ("a shape is
defined as a set of boxes", Section IV).  Shapes live in a
:class:`ShapeTable` indexed by shape id, and each object's *shape variable*
ranges over ids of that table — this is geost's polymorphism, which is
exactly how the paper encodes design alternatives.

Conversion helpers decompose a :class:`~repro.modules.footprint.Footprint`
into maximal vertical runs of same-resource cells, giving compact shifted
boxes that carry the resource property.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

from repro.fabric.resource import ResourceType
from repro.geost.boxes import Box, ShiftedBox
from repro.modules.footprint import Footprint


class GeostShape:
    """A non-empty collection of shifted boxes."""

    __slots__ = ("boxes",)

    def __init__(self, boxes: Iterable[ShiftedBox]) -> None:
        boxes = tuple(boxes)
        if not boxes:
            raise ValueError("a geost shape needs at least one box")
        dims = {b.dim for b in boxes}
        if len(dims) != 1:
            raise ValueError("mixed dimensions in one shape")
        self.boxes = boxes

    @property
    def dim(self) -> int:
        return self.boxes[0].dim

    def bounding_box(self) -> Box:
        k = self.dim
        lo = [min(b.offset[d] for b in self.boxes) for d in range(k)]
        hi = [max(b.offset[d] + b.size[d] for b in self.boxes) for d in range(k)]
        return Box(tuple(lo), tuple(h - l for l, h in zip(lo, hi)))

    def volume(self) -> int:
        return sum(b.volume() for b in self.boxes)

    def absolute_boxes(self, anchor: Tuple[int, ...]) -> List[Box]:
        return [b.at(anchor) for b in self.boxes]

    def __len__(self) -> int:
        return len(self.boxes)

    def __repr__(self) -> str:
        return f"GeostShape(boxes={len(self.boxes)}, dim={self.dim})"

    # ------------------------------------------------------------------
    @staticmethod
    def from_footprint(fp: Footprint) -> "GeostShape":
        """Decompose a footprint into vertical same-resource runs."""
        boxes: List[ShiftedBox] = []
        by_col: Dict[Tuple[int, ResourceType], List[int]] = {}
        for x, y, k in fp.cells:
            by_col.setdefault((x, k), []).append(y)
        for (x, kind), ys in sorted(by_col.items()):
            ys.sort()
            run_start = ys[0]
            prev = ys[0]
            for y in ys[1:] + [None]:  # sentinel flushes the last run
                if y is not None and y == prev + 1:
                    prev = y
                    continue
                boxes.append(
                    ShiftedBox((x, run_start), (1, prev - run_start + 1), kind)
                )
                if y is not None:
                    run_start = prev = y
        return GeostShape(boxes)


class ShapeTable:
    """Shared registry: shape id -> :class:`GeostShape`.

    With ``dedupe`` enabled, :meth:`add` returns the existing id when a
    geometrically identical shape was registered before (two tasks of the
    same module extrude to the same boxes, for example).  Callers must
    then treat returned ids as *shared*, not as a fresh contiguous block
    — decode a shape choice by looking the id up in the caller's own id
    list, never by offset arithmetic.
    """

    def __init__(self, dedupe: bool = False) -> None:
        self._shapes: List[GeostShape] = []
        self._by_key: Dict[tuple, int] | None = {} if dedupe else None

    @staticmethod
    def _key(shape: GeostShape) -> tuple:
        return tuple(
            sorted(
                (b.offset, b.size, -1 if b.resource is None else int(b.resource))
                for b in shape.boxes
            )
        )

    def add(self, shape: GeostShape) -> int:
        if self._by_key is not None:
            key = self._key(shape)
            hit = self._by_key.get(key)
            if hit is not None:
                return hit
            self._shapes.append(shape)
            self._by_key[key] = len(self._shapes) - 1
            return len(self._shapes) - 1
        self._shapes.append(shape)
        return len(self._shapes) - 1

    def add_footprint(self, fp: Footprint) -> int:
        return self.add(GeostShape.from_footprint(fp))

    def __getitem__(self, sid: int) -> GeostShape:
        return self._shapes[sid]

    def __len__(self) -> int:
        return len(self._shapes)

    def ids(self) -> range:
        return range(len(self._shapes))

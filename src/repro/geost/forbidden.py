"""Forbidden-region algebra.

geost prunes an object's anchor domain against *forbidden anchor boxes*:
regions of anchor space where placing the object (with a given shape) would
intersect an obstacle.  Obstacles are

* the compulsory parts of other objects (the cells they occupy under every
  remaining placement), and
* external forbidden regions — the paper's second extension: "the geost
  kernel implements a constraint defining regions where modules are not
  placed.  This ... is extended with a resource property" (Section IV).
  A resource-typed forbidden region only blocks shifted boxes of matching
  resource type, which is how heterogeneous fabric is encoded.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.fabric.resource import ResourceType
from repro.geost.boxes import Box, ShiftedBox
from repro.geost.objects import GeostObject


@dataclass(frozen=True)
class ForbiddenRegion:
    """An absolute box that blocks boxes of a given resource (None = all)."""

    box: Box
    #: None blocks every shifted box; otherwise only boxes of this resource
    resource: Optional[ResourceType] = None

    def blocks(self, sbox: ShiftedBox) -> bool:
        return self.resource is None or self.resource is sbox.resource


def anchor_forbidden_box(sbox: ShiftedBox, obstacle: Box) -> Box:
    """Anchors at which ``sbox`` would intersect ``obstacle``.

    For each dimension with obstacle origin ``b``, obstacle size ``t``,
    box offset ``f`` and box size ``z``, intersection happens iff the anchor
    ``p`` satisfies ``b - f - z < p < b + t - f``, i.e. ``p`` lies in the
    half-open box ``[b - f - z + 1, b + t - f)`` of size ``t + z - 1``.
    """
    origin = tuple(
        b - f - z + 1
        for b, f, z in zip(obstacle.origin, sbox.offset, sbox.size)
    )
    size = tuple(t + z - 1 for t, z in zip(obstacle.size, sbox.size))
    return Box(origin, size)


def compulsory_boxes(obj: GeostObject) -> List[Box]:
    """The cells ``obj`` occupies under *every* remaining placement.

    Only meaningful when the shape variable is fixed (otherwise the
    intersection across shapes is taken conservatively as empty).  For a
    fixed shape, each shifted box contributes the interval
    ``[anchor_max + offset, anchor_min + offset + size)`` per dimension,
    when non-empty.
    """
    if not obj.shape_var.is_fixed():
        return []
    shape = obj.shape(obj.shape_var.value())
    lo = obj.anchor_min()
    hi = obj.anchor_max()
    out: List[Box] = []
    for sbox in shape.boxes:
        origin = tuple(h + f for h, f in zip(hi, sbox.offset))
        end = tuple(l + f + z for l, f, z in zip(lo, sbox.offset, sbox.size))
        size = tuple(e - o for o, e in zip(origin, end))
        if all(s > 0 for s in size):
            out.append(Box(origin, size))
    return out


def forbidden_anchor_boxes(
    shape_boxes: Sequence[ShiftedBox],
    obstacles: Sequence[Box],
    regions: Sequence[ForbiddenRegion] = (),
) -> List[Box]:
    """All forbidden anchor boxes for one candidate shape.

    ``obstacles`` block every shifted box (other objects' material);
    ``regions`` block only resource-matching boxes (fabric heterogeneity).
    """
    out: List[Box] = []
    for sbox in shape_boxes:
        for ob in obstacles:
            out.append(anchor_forbidden_box(sbox, ob))
        for region in regions:
            if region.blocks(sbox):
                out.append(anchor_forbidden_box(sbox, region.box))
    return out

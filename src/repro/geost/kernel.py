"""The geost global constraint.

Non-overlap of polymorphic k-dimensional objects plus resource-typed
forbidden regions, implemented as one propagator of the CP engine:

* anchors are kept inside per-object placement bounds,
* each object's anchor bounds are filtered by the sweep algorithm against
  the forbidden anchor boxes induced by (a) other objects' compulsory
  parts and (b) the resource-typed forbidden regions,
* candidate shapes with no remaining feasible anchor are removed from the
  object's shape variable.

This is the reference implementation — faithful to the paper's description
of the extended kernel, exercised directly by unit/property tests and by
small examples.  The production FPGA path with bitmap pruning is
:class:`repro.geost.placement.PlacementKernel`; both enforce the same
relation, which the test suite checks by comparing solution sets.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.cp.engine import Engine, Inconsistent
from repro.cp.events import Event
from repro.cp.propagator import Priority, Propagator
from repro.geost.boxes import Box
from repro.geost.forbidden import (
    ForbiddenRegion,
    compulsory_boxes,
    forbidden_anchor_boxes,
)
from repro.geost.objects import GeostObject
from repro.geost.sweep import sweep_max, sweep_min
from repro.obs.trace import GEOST_SHAPE_REMOVED


class Geost(Propagator):
    """Non-overlap of geost objects within resource-typed regions."""

    priority = Priority.EXPENSIVE

    def __init__(
        self,
        objects: Sequence[GeostObject],
        regions: Sequence[ForbiddenRegion] = (),
    ) -> None:
        super().__init__("geost")
        if not objects:
            raise ValueError("geost needs at least one object")
        dims = {o.dim for o in objects}
        if len(dims) != 1:
            raise ValueError("geost objects must share one dimension")
        self.objects = list(objects)
        self.regions = list(regions)

    def variables(self):
        out = []
        for o in self.objects:
            out.extend(o.origin)
            out.append(o.shape_var)
        return out

    # ------------------------------------------------------------------
    def _obstacles_for(self, obj: GeostObject) -> List[Box]:
        """Compulsory material of every *other* object."""
        out: List[Box] = []
        for other in self.objects:
            if other is not obj:
                out.extend(compulsory_boxes(other))
        return out

    def _per_shape_boxes(
        self, obj: GeostObject, obstacles: List[Box]
    ) -> Dict[int, List[Box]]:
        return {
            sid: forbidden_anchor_boxes(
                obj.shape(sid).boxes, obstacles, self.regions
            )
            for sid in obj.candidate_shapes()
        }

    def propagate(self, engine: Engine) -> None:
        changed = True
        while changed:
            changed = False
            for obj in self.objects:
                changed |= self._filter_object(obj, engine)

    def _filter_object(self, obj: GeostObject, engine: Engine) -> bool:
        """Prune one object's shape and anchor variables; True if changed."""
        obstacles = self._obstacles_for(obj)
        per_shape = self._per_shape_boxes(obj, obstacles)
        bounds = [
            (v.min(), v.max()) for v in obj.origin
        ]
        changed = False
        # 1) drop shapes with no feasible anchor at all
        feasible_shapes: List[int] = []
        for sid, boxes in per_shape.items():
            if sweep_min(bounds, [boxes], 0) is not None:
                feasible_shapes.append(sid)
            else:
                if obj.shape_var.remove(sid, cause=self):
                    changed = True
                    if engine.tracer is not None:
                        engine.tracer.emit(
                            GEOST_SHAPE_REMOVED, object=obj.oid, shape=sid
                        )
        if not feasible_shapes:
            raise Inconsistent(f"geost: object {obj.oid} has no placement")
        shape_boxes = [per_shape[sid] for sid in feasible_shapes]
        # 2) bounds filtering per dimension via the sweep
        for d, var in enumerate(obj.origin):
            lo_pt = sweep_min(bounds, shape_boxes, d)
            if lo_pt is None:
                raise Inconsistent(f"geost: object {obj.oid} has no placement")
            changed |= var.remove_below(lo_pt[d], cause=self)
            hi_pt = sweep_max(
                [(v.min(), v.max()) for v in obj.origin], shape_boxes, d
            )
            if hi_pt is None:
                raise Inconsistent(f"geost: object {obj.oid} has no placement")
            changed |= var.remove_above(hi_pt[d], cause=self)
            bounds = [(v.min(), v.max()) for v in obj.origin]
        return changed

    # ------------------------------------------------------------------
    def check_fixed(self) -> bool:
        """Decision check: do the fixed objects satisfy the constraint?

        Used by tests; every object must be fixed.
        """
        placed: List[Tuple[int, List[Box]]] = []
        for obj in self.objects:
            anchor, sid = obj.fixed_placement()
            placed.append((obj.oid, obj.shape(sid).absolute_boxes(anchor)))
        # pairwise overlap
        for i in range(len(placed)):
            for j in range(i + 1, len(placed)):
                for a in placed[i][1]:
                    for b in placed[j][1]:
                        if a.intersects(b):
                            return False
        # region violation
        for obj in self.objects:
            anchor, sid = obj.fixed_placement()
            for sbox in obj.shape(sid).boxes:
                absolute = sbox.at(anchor)
                for region in self.regions:
                    if region.blocks(sbox) and absolute.intersects(region.box):
                        return False
        return True

"""The geost global constraint.

Non-overlap of polymorphic k-dimensional objects plus resource-typed
forbidden regions, implemented as one propagator of the CP engine:

* anchors are kept inside per-object placement bounds,
* each object's anchor bounds are filtered by the sweep algorithm against
  the forbidden anchor boxes induced by (a) other objects' compulsory
  parts and (b) the resource-typed forbidden regions,
* candidate shapes with no remaining feasible anchor are removed from the
  object's shape variable.

This is the reference implementation — faithful to the paper's description
of the extended kernel, exercised directly by unit/property tests and by
small examples.  The production FPGA path with bitmap pruning is
:class:`repro.geost.placement.PlacementKernel`; both enforce the same
relation, which the test suite checks by comparing solution sets.

Two propagation modes enforce that relation identically:

``incremental=False`` (wholesale)
    Every wake-up re-derives every object's obstacle set and forbidden
    anchor boxes and re-filters all objects in a ``while changed`` loop —
    the textbook fixpoint, kept as the differential-testing oracle.

``incremental=True`` (default)
    A per-object dirty set, fed by the engine's modification events via
    :meth:`on_event`, selects which objects to re-filter; compulsory-part
    caches and per-shape forbidden-box lists are reused across wake-ups
    and invalidated through a :class:`~repro.cp.trail.Revision` stamp that
    trail undo closures bump, so every cache rolls back with the search.
    Fixed objects are rasterized into a NumPy
    :class:`~repro.geost.bitboard.OccupancyBitboard` (together with the
    static forbidden regions) and tested by mask intersection instead of
    explicit boxes.  Both modes run each wake-up to the same least
    fixpoint of the same monotone per-object filters (chaotic-iteration
    confluence), so search trees are bit-identical — the property the
    differential suite pins.

On top of the incremental mode, ``bitboard=True`` (default) replaces the
per-point scalar sweep itself: compulsory parts of the *other* unfixed
objects are stamped into a throwaway copy of the board's all-blocking
plane, summed-area tables turn every shape's forbidden-anchor set over
the whole anchor lattice into a handful of array subtractions
(:meth:`~repro.geost.bitboard.OccupancyBitboard.forbidden_anchor_lattice`),
and per-axis bounds come from vectorized first-free scans of the free
lattice.  The scans prune the exact lexicographic extrema the scalar
sweep finds and replay its prune order (per shape, then per dimension
min/max with bounds re-read after every prune), so the three modes form
an oracle ladder — scalar / incremental / bitboard — with bit-identical
search trees all the way up.  Instances whose anchor window exceeds the
rasterization guard keep the scalar sweep and count a ``fallbacks``
tick.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.cp.engine import Engine, Inconsistent
from repro.cp.events import Event
from repro.cp.propagator import Priority, Propagator
from repro.cp.trail import Revision, Trail
from repro.fabric.masks import integral_occupancy
from repro.geost.bitboard import OccupancyBitboard, anchor_window
from repro.geost.boxes import Box
from repro.geost.forbidden import (
    ForbiddenRegion,
    compulsory_boxes,
    forbidden_anchor_boxes,
)
from repro.geost.incremental import IncStats
from repro.geost.objects import GeostObject
from repro.geost.sweep import ShapeView, SweepStats, sweep_max, sweep_min
from repro.obs.trace import (
    GEOST_BITBOARD,
    GEOST_INCREMENTAL,
    GEOST_SHAPE_REMOVED,
)

#: bitboard memory guard: skip rasterization when the anchor-reachable
#: window would exceed this many cells per plane (~4 MiB of bools)
_MAX_BOARD_CELLS = 1 << 22


class Geost(Propagator):
    """Non-overlap of geost objects within resource-typed regions."""

    priority = Priority.EXPENSIVE
    #: one run drains the dirty set (incremental) / loops until no change
    #: (wholesale), i.e. reaches this propagator's own fixpoint — the
    #: engine need not re-queue it for self-caused events
    idempotent = True

    def __init__(
        self,
        objects: Sequence[GeostObject],
        regions: Sequence[ForbiddenRegion] = (),
        incremental: bool = True,
        bitboard: bool = True,
    ) -> None:
        super().__init__("geost")
        if not objects:
            raise ValueError("geost needs at least one object")
        dims = {o.dim for o in objects}
        if len(dims) != 1:
            raise ValueError("geost objects must share one dimension")
        self.objects = list(objects)
        self.regions = list(regions)
        self.incremental = incremental
        #: use the vectorized lattice sweep (meaningful only when
        #: ``incremental`` — the wholesale oracle stays purely scalar)
        self.bitboard = bitboard and incremental
        self.inc_stats = IncStats()
        self.sweep_stats = SweepStats()
        # --- incremental state (unused in wholesale mode) ---
        self._trail: Optional[Trail] = None
        self._var_to_idx: Dict[int, int] = {}
        self._dirty: Set[int] = set()
        self._comp_stale: Set[int] = set()
        #: cached compulsory boxes per object, maintained under the trail
        self._comp: List[List[Box]] = []
        #: bumped whenever any obstacle (compulsory part, imprint) changes,
        #: including from undo closures — keys the forbidden-box cache
        self._rev = Revision()
        self._box_cache: Dict[Tuple[int, int], Tuple[int, List[Box]]] = {}
        self._board: Optional[OccupancyBitboard] = None
        self._imprinted: List[bool] = []
        #: fixed objects awaiting one post-fix filter before rasterization
        self._imprint_pending: Set[int] = set()

    def variables(self):
        out = []
        for o in self.objects:
            out.extend(o.origin)
            out.append(o.shape_var)
        return out

    # ------------------------------------------------------------------
    # Incremental bookkeeping
    # ------------------------------------------------------------------
    def post(self, engine: Engine) -> None:
        for v in self.variables():
            v.watch(self, Event.ANY)
        if self.incremental:
            self._trail = engine.trail
            n = len(self.objects)
            for idx, obj in enumerate(self.objects):
                for v in obj.origin:
                    self._var_to_idx[id(v)] = idx
                self._var_to_idx[id(obj.shape_var)] = idx
            self._comp = [[] for _ in range(n)]
            self._comp_stale = set(range(n))
            self._dirty = set(range(n))
            self._imprinted = [False] * n
            window = anchor_window(self.objects)
            if window.volume() <= _MAX_BOARD_CELLS:
                self._board = OccupancyBitboard(window)
                for region in self.regions:
                    self._board.add_region(region)
        engine.schedule(self)

    def on_event(self, var, event: Event) -> bool:
        if self.incremental:
            idx = self._var_to_idx.get(id(var))
            if idx is not None:
                self._dirty.add(idx)
                self._comp_stale.add(idx)
        return True

    def _refresh(self) -> None:
        """Sync compulsory caches with domains; rasterize newly fixed objects."""
        n = len(self.objects)
        while self._comp_stale:
            idx = min(self._comp_stale)
            self._comp_stale.discard(idx)
            obj = self.objects[idx]
            new = compulsory_boxes(obj)
            old = self._comp[idx]
            if new != old:
                self._comp[idx] = new
                self._rev.bump()
                assert self._trail is not None
                self._trail.push(
                    lambda idx=idx, old=old: self._restore_comp(idx, old)
                )
                # every other object's last filter ran against the old
                # obstacle set: compulsory parts only grow as domains
                # shrink, so they may now prune more
                self._dirty.update(j for j in range(n) if j != idx)
            if (
                self._board is not None
                and obj.is_fixed()
                and not self._imprinted[idx]
            ):
                self._imprint_pending.add(idx)
        # rasterize a fixed object only once it has been filtered in its
        # fixed state (left the dirty set): its own filter must not see its
        # own material on the board
        for idx in sorted(self._imprint_pending - self._dirty):
            self._imprint_pending.discard(idx)
            obj = self.objects[idx]
            if not self._imprinted[idx] and obj.is_fixed():
                self._imprint(idx, obj)

    def _restore_comp(self, idx: int, old: List[Box]) -> None:
        self._comp[idx] = old
        self._rev.bump()

    def _imprint(self, idx: int, obj: GeostObject) -> None:
        """Move a fixed object's material from explicit boxes to the board."""
        assert self._board is not None and self._trail is not None
        anchor, sid = obj.fixed_placement()
        self._board.imprint(obj.shape(sid).absolute_boxes(anchor), self._trail)
        self._imprinted[idx] = True
        self._rev.bump()
        self.inc_stats.rasterized += 1
        self._trail.push(lambda idx=idx: self._unimprint(idx))

    def _unimprint(self, idx: int) -> None:
        self._imprinted[idx] = False
        self._rev.bump()
        # conservative: if the object somehow remains fixed at this level it
        # will be re-rasterized after its next filter (is_fixed is rechecked)
        self._imprint_pending.add(idx)

    # ------------------------------------------------------------------
    def _obstacles_for(self, obj: GeostObject) -> List[Box]:
        """Compulsory material of every *other* object (wholesale path)."""
        out: List[Box] = []
        for other in self.objects:
            if other is not obj:
                out.extend(compulsory_boxes(other))
        return out

    def _per_shape_boxes(
        self, obj: GeostObject, obstacles: List[Box]
    ) -> Dict[int, List[Box]]:
        return {
            sid: forbidden_anchor_boxes(
                obj.shape(sid).boxes, obstacles, self.regions
            )
            for sid in obj.candidate_shapes()
        }

    def _shape_boxes(self, idx: int, sid: int, obstacles: List[Box]) -> List[Box]:
        """Forbidden boxes of one candidate shape, cached per revision."""
        key = (idx, sid)
        entry = self._box_cache.get(key)
        if entry is not None and entry[0] == self._rev.current:
            self.inc_stats.reused += 1
            return entry[1]
        # with a board, regions live on the raster planes; without one
        # (window too large) they stay explicit
        regions = () if self._board is not None else self.regions
        boxes = forbidden_anchor_boxes(
            self.objects[idx].shape(sid).boxes, obstacles, regions
        )
        self._box_cache[key] = (self._rev.current, boxes)
        return boxes

    # ------------------------------------------------------------------
    def propagate(self, engine: Engine) -> None:
        if not self.incremental:
            changed = True
            while changed:
                changed = False
                for obj in self.objects:
                    changed |= self._filter_object(obj, engine)
            return
        self._refresh()
        while self._dirty:
            idx = min(self._dirty)  # deterministic processing order
            self._dirty.discard(idx)
            if self._imprinted[idx]:
                # fixed, filtered while fixed, and rasterized — nothing
                # about it can have changed; conflicts with it are caught
                # when the *changed* object is filtered against the board
                continue
            self.inc_stats.dirty += 1
            self._filter_incremental(idx, engine)
            self._refresh()
        tr = engine.tracer
        if tr is not None and tr.fine:
            tr.emit(GEOST_INCREMENTAL, **self.inc_stats.as_dict())
            if self.bitboard:
                tr.emit(
                    GEOST_BITBOARD,
                    rows_tested=self.inc_stats.rows_tested,
                    fallbacks=self.inc_stats.fallbacks,
                )

    def _filter_object(self, obj: GeostObject, engine: Engine) -> bool:
        """Prune one object's shape and anchor variables; True if changed."""
        obstacles = self._obstacles_for(obj)
        per_shape = self._per_shape_boxes(obj, obstacles)
        return self._filter_views(obj, per_shape, engine)

    def _filter_incremental(self, idx: int, engine: Engine) -> None:
        obj = self.objects[idx]
        if self.bitboard:
            if self._board is not None:
                self._filter_bitboard(idx, obj, engine)
                return
            self.inc_stats.fallbacks += 1
        obstacles = [
            b
            for j in range(len(self.objects))
            if j != idx and not self._imprinted[j]
            for b in self._comp[j]
        ]
        per_shape: Dict[int, ShapeView] = {}
        for sid in obj.candidate_shapes():
            boxes = self._shape_boxes(idx, sid, obstacles)
            raster = (
                self._board.probe_for_shape(obj.shape(sid).boxes)
                if self._board is not None
                else None
            )
            per_shape[sid] = ShapeView(boxes, raster)
        self._filter_views(obj, per_shape, engine)

    def _filter_bitboard(self, idx: int, obj: GeostObject, engine: Engine) -> None:
        """Vectorized filter: whole-lattice masks instead of sweep points.

        Reproduces :meth:`_filter_views` prune for prune.  The forbidden
        predicate of an anchor is bounds-independent, so one free lattice
        computed over the entry bounds serves every later scan: the lattice
        restricted to shrunken bounds *is* the lattice of those bounds.
        Per-axis extrema of the free set equal the scalar sweep's
        lexicographic extrema coordinate (the sweep returns the least/
        greatest feasible point with that axis most significant), and
        bounds are re-read after every prune — exactly the scalar
        sequencing — so domain holes behind a pruned bound resolve
        identically.
        """
        board = self._board
        assert board is not None
        obstacles = [
            b
            for j in range(len(self.objects))
            if j != idx and not self._imprinted[j]
            for b in self._comp[j]
        ]
        all_integral = integral_occupancy(board.combined_occupancy(obstacles))
        bounds = [(v.min(), v.max()) for v in obj.origin]
        # 1) drop shapes with no feasible anchor at all
        union: Optional[np.ndarray] = None
        for sid in list(obj.candidate_shapes()):
            forbidden = board.forbidden_anchor_lattice(
                obj.shape(sid).boxes, bounds, all_integral
            )
            self.inc_stats.rows_tested += 1
            self.sweep_stats.rows += 1
            if forbidden.all():
                if obj.shape_var.remove(sid, cause=self):
                    if engine.tracer is not None:
                        engine.tracer.emit(
                            GEOST_SHAPE_REMOVED, object=obj.oid, shape=sid
                        )
            else:
                free = ~forbidden
                union = free if union is None else (union | free)
        if union is None:
            raise Inconsistent(f"geost: object {obj.oid} has no placement")
        # 2) bounds filtering per dimension via first/last-free scans
        k = obj.dim
        base = [lo for lo, _ in bounds]
        clip = list(bounds)
        for d, var in enumerate(obj.origin):
            for want_max in (False, True):
                sub = union[
                    tuple(
                        slice(lo - b, hi - b + 1)
                        for (lo, hi), b in zip(clip, base)
                    )
                ]
                self.inc_stats.rows_tested += 1
                self.sweep_stats.rows += 1
                axes = tuple(a for a in range(k) if a != d)
                line = sub.any(axis=axes) if axes else sub
                if not line.any():
                    raise Inconsistent(
                        f"geost: object {obj.oid} has no placement"
                    )
                if want_max:
                    pos = len(line) - 1 - int(np.argmax(line[::-1]))
                    var.remove_above(clip[d][0] + pos, cause=self)
                else:
                    pos = int(np.argmax(line))
                    var.remove_below(clip[d][0] + pos, cause=self)
                clip[d] = (var.min(), var.max())

    def _filter_views(self, obj: GeostObject, per_shape, engine: Engine) -> bool:
        """Prune one object given its per-shape forbidden spaces."""
        bounds = [(v.min(), v.max()) for v in obj.origin]
        changed = False
        # 1) drop shapes with no feasible anchor at all
        feasible_shapes: List[int] = []
        for sid, boxes in per_shape.items():
            if sweep_min(bounds, [boxes], 0, self.sweep_stats) is not None:
                feasible_shapes.append(sid)
            else:
                if obj.shape_var.remove(sid, cause=self):
                    changed = True
                    if engine.tracer is not None:
                        engine.tracer.emit(
                            GEOST_SHAPE_REMOVED, object=obj.oid, shape=sid
                        )
        if not feasible_shapes:
            raise Inconsistent(f"geost: object {obj.oid} has no placement")
        shape_boxes = [per_shape[sid] for sid in feasible_shapes]
        # 2) bounds filtering per dimension via the sweep
        for d, var in enumerate(obj.origin):
            lo_pt = sweep_min(bounds, shape_boxes, d, self.sweep_stats)
            if lo_pt is None:
                raise Inconsistent(f"geost: object {obj.oid} has no placement")
            changed |= var.remove_below(lo_pt[d], cause=self)
            hi_pt = sweep_max(
                [(v.min(), v.max()) for v in obj.origin], shape_boxes, d,
                self.sweep_stats,
            )
            if hi_pt is None:
                raise Inconsistent(f"geost: object {obj.oid} has no placement")
            changed |= var.remove_above(hi_pt[d], cause=self)
            bounds = [(v.min(), v.max()) for v in obj.origin]
        return changed

    # ------------------------------------------------------------------
    def check_fixed(self) -> bool:
        """Decision check: do the fixed objects satisfy the constraint?

        Used by tests; every object must be fixed.
        """
        placed: List[Tuple[int, List[Box]]] = []
        for obj in self.objects:
            anchor, sid = obj.fixed_placement()
            placed.append((obj.oid, obj.shape(sid).absolute_boxes(anchor)))
        # pairwise overlap
        for i in range(len(placed)):
            for j in range(i + 1, len(placed)):
                for a in placed[i][1]:
                    for b in placed[j][1]:
                        if a.intersects(b):
                            return False
        # region violation
        for obj in self.objects:
            anchor, sid = obj.fixed_placement()
            for sbox in obj.shape(sid).boxes:
                absolute = sbox.at(anchor)
                for region in self.regions:
                    if region.blocks(sbox) and absolute.intersects(region.box):
                        return False
        return True

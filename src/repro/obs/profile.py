"""Per-propagator accounting and the :class:`SolveProfile` artifact.

``EngineStats`` answers *how much* work a solve did; this module answers
*where it went*.  When profiling is enabled the engine wraps every
propagator run with a wall clock and attributes domain updates and
failures to the propagator that caused them; the result is aggregated
into a :class:`SolveProfile` — a plain-data record that sums across runs,
crosses process boundaries as a dict, exports to JSON/CSV, and renders a
human-readable report.

The JSON layout is pinned by :data:`repro.obs.schema.PROFILE_SCHEMA`;
golden-statistics regression tests serialize profiles of fixed instances
and fail on any drift of the counters.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

#: bump when the exported dict layout changes incompatibly
PROFILE_SCHEMA_VERSION = 1


@dataclass
class PropagatorProfile:
    """Accumulated cost/effect of one propagator (by name)."""

    name: str
    #: times ``propagate`` ran
    calls: int = 0
    #: wall-clock seconds inside ``propagate``
    time_s: float = 0.0
    #: domain updates performed during this propagator's runs
    prunes: int = 0
    #: runs that ended in ``Inconsistent``
    failures: int = 0

    def __add__(self, other: "PropagatorProfile") -> "PropagatorProfile":
        if self.name != other.name:
            raise ValueError(f"cannot merge {self.name!r} with {other.name!r}")
        return PropagatorProfile(
            self.name,
            self.calls + other.calls,
            self.time_s + other.time_s,
            self.prunes + other.prunes,
            self.failures + other.failures,
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "calls": self.calls,
            "time_s": self.time_s,
            "prunes": self.prunes,
            "failures": self.failures,
        }

    @staticmethod
    def from_dict(d: Dict[str, Any]) -> "PropagatorProfile":
        return PropagatorProfile(
            d["name"], d["calls"], d["time_s"], d["prunes"], d["failures"]
        )


@dataclass
class SolveProfile:
    """Machine-readable profile of one (or a sum of) solver run(s)."""

    # search-layer counters
    nodes: int = 0
    backtracks: int = 0
    solutions: int = 0
    max_depth: int = 0
    restarts: int = 0
    elapsed: float = 0.0
    stop_reason: str = ""
    # engine-layer counters
    propagations: int = 0
    domain_updates: int = 0
    failures: int = 0
    # anchor-mask cache counters (0 when the solve ran uncached);
    # evictions stay 0 unless the cache runs with an LRU capacity
    cache_hits: int = 0
    cache_misses: int = 0
    cache_narrowed: int = 0
    cache_evictions: int = 0
    # incremental-geost counters (0 when the kernel ran wholesale):
    # dirty objects filtered / cached results reused / objects rasterized
    # onto the occupancy bitboard
    geost_dirty: int = 0
    geost_reused: int = 0
    geost_rasterized: int = 0
    # bitboard-sweep counters (0 when the sweep ran scalar): vectorized
    # frontier scans performed / filters that fell back to the scalar
    # sweep because the anchor window exceeded the rasterization guard
    bitboard_rows_tested: int = 0
    bitboard_fallbacks: int = 0
    # analytical-relaxation counters (0 unless the analytical placer ran):
    # force-loop iterations executed / centroids legalized onto anchors
    analytical_iterations: int = 0
    analytical_snapped: int = 0
    #: per-propagator breakdown, keyed by propagator name
    propagators: Dict[str, PropagatorProfile] = field(default_factory=dict)
    #: free-form context: instance name, seed, placer config, ...
    meta: Dict[str, Any] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @staticmethod
    def capture(engine, search_stats=None, **meta: Any) -> "SolveProfile":
        """Snapshot an engine (and optionally search stats) into a profile.

        ``engine`` is duck-typed (``stats`` + ``prop_stats`` attributes) so
        this module stays import-free of :mod:`repro.cp`.
        """
        p = SolveProfile(meta=dict(meta))
        es = engine.stats
        p.propagations = es.propagations
        p.domain_updates = es.domain_updates
        p.failures = es.failures
        if getattr(engine, "prop_stats", None) is not None:
            p.propagators = {
                name: PropagatorProfile(
                    rec.name, rec.calls, rec.time_s, rec.prunes, rec.failures
                )
                for name, rec in engine.prop_stats.items()
            }
        if search_stats is not None:
            p.nodes = search_stats.nodes
            p.backtracks = search_stats.backtracks
            p.solutions = search_stats.solutions
            p.max_depth = search_stats.max_depth
            p.elapsed = search_stats.elapsed
            p.stop_reason = search_stats.stop_reason
        return p

    # ------------------------------------------------------------------
    # Aggregation
    # ------------------------------------------------------------------
    def __add__(self, other: "SolveProfile") -> "SolveProfile":
        props: Dict[str, PropagatorProfile] = {
            k: PropagatorProfile(v.name, v.calls, v.time_s, v.prunes, v.failures)
            for k, v in self.propagators.items()
        }
        for k, v in other.propagators.items():
            props[k] = (props[k] + v) if k in props else v
        meta = dict(self.meta)
        for k, v in other.meta.items():
            meta.setdefault(k, v)
        return SolveProfile(
            nodes=self.nodes + other.nodes,
            backtracks=self.backtracks + other.backtracks,
            solutions=self.solutions + other.solutions,
            max_depth=max(self.max_depth, other.max_depth),
            restarts=self.restarts + other.restarts,
            elapsed=self.elapsed + other.elapsed,
            stop_reason=self.stop_reason or other.stop_reason,
            propagations=self.propagations + other.propagations,
            domain_updates=self.domain_updates + other.domain_updates,
            failures=self.failures + other.failures,
            cache_hits=self.cache_hits + other.cache_hits,
            cache_misses=self.cache_misses + other.cache_misses,
            cache_narrowed=self.cache_narrowed + other.cache_narrowed,
            cache_evictions=self.cache_evictions + other.cache_evictions,
            geost_dirty=self.geost_dirty + other.geost_dirty,
            geost_reused=self.geost_reused + other.geost_reused,
            geost_rasterized=self.geost_rasterized + other.geost_rasterized,
            bitboard_rows_tested=(
                self.bitboard_rows_tested + other.bitboard_rows_tested
            ),
            bitboard_fallbacks=self.bitboard_fallbacks + other.bitboard_fallbacks,
            analytical_iterations=(
                self.analytical_iterations + other.analytical_iterations
            ),
            analytical_snapped=self.analytical_snapped + other.analytical_snapped,
            propagators=props,
            meta=meta,
        )

    def counts(self) -> Dict[str, int]:
        """The integer counters that golden tests pin (no wall-clock)."""
        return {
            "nodes": self.nodes,
            "backtracks": self.backtracks,
            "solutions": self.solutions,
            "max_depth": self.max_depth,
            "restarts": self.restarts,
            "propagations": self.propagations,
            "domain_updates": self.domain_updates,
            "failures": self.failures,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_narrowed": self.cache_narrowed,
            "cache_evictions": self.cache_evictions,
            "geost_dirty": self.geost_dirty,
            "geost_reused": self.geost_reused,
            "geost_rasterized": self.geost_rasterized,
            "bitboard_rows_tested": self.bitboard_rows_tested,
            "bitboard_fallbacks": self.bitboard_fallbacks,
            "analytical_iterations": self.analytical_iterations,
            "analytical_snapped": self.analytical_snapped,
        }

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema_version": PROFILE_SCHEMA_VERSION,
            **self.counts(),
            "elapsed": self.elapsed,
            "stop_reason": self.stop_reason,
            "propagators": [
                self.propagators[k].to_dict() for k in sorted(self.propagators)
            ],
            "meta": self.meta,
        }

    @staticmethod
    def from_dict(d: Dict[str, Any]) -> "SolveProfile":
        version = d.get("schema_version", PROFILE_SCHEMA_VERSION)
        if version != PROFILE_SCHEMA_VERSION:
            raise ValueError(
                f"unsupported profile schema version {version} "
                f"(expected {PROFILE_SCHEMA_VERSION})"
            )
        props = [PropagatorProfile.from_dict(p) for p in d.get("propagators", [])]
        return SolveProfile(
            nodes=d["nodes"],
            backtracks=d["backtracks"],
            solutions=d["solutions"],
            max_depth=d["max_depth"],
            restarts=d.get("restarts", 0),
            elapsed=d.get("elapsed", 0.0),
            stop_reason=d.get("stop_reason", ""),
            propagations=d["propagations"],
            domain_updates=d["domain_updates"],
            failures=d["failures"],
            cache_hits=d.get("cache_hits", 0),
            cache_misses=d.get("cache_misses", 0),
            cache_narrowed=d.get("cache_narrowed", 0),
            cache_evictions=d.get("cache_evictions", 0),
            geost_dirty=d.get("geost_dirty", 0),
            geost_reused=d.get("geost_reused", 0),
            geost_rasterized=d.get("geost_rasterized", 0),
            bitboard_rows_tested=d.get("bitboard_rows_tested", 0),
            bitboard_fallbacks=d.get("bitboard_fallbacks", 0),
            analytical_iterations=d.get("analytical_iterations", 0),
            analytical_snapped=d.get("analytical_snapped", 0),
            propagators={p.name: p for p in props},
            meta=dict(d.get("meta", {})),
        )

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @staticmethod
    def from_json(text: str) -> "SolveProfile":
        return SolveProfile.from_dict(json.loads(text))

    def save(self, path: str) -> None:
        with open(path, "w") as handle:
            handle.write(self.to_json())

    @staticmethod
    def load(path: str) -> "SolveProfile":
        with open(path) as handle:
            return SolveProfile.from_json(handle.read())

    def to_csv(self) -> str:
        """Per-propagator breakdown as CSV (header + one row per name)."""
        lines = ["propagator,calls,time_s,prunes,failures"]
        for name in sorted(self.propagators):
            p = self.propagators[name]
            lines.append(
                f"{p.name},{p.calls},{p.time_s:.6f},{p.prunes},{p.failures}"
            )
        return "\n".join(lines) + "\n"


def profile_report(profile: SolveProfile) -> str:
    """Human-readable rendering: headline counters + propagator table."""
    p = profile
    head = [
        f"nodes={p.nodes} backtracks={p.backtracks} solutions={p.solutions} "
        f"max_depth={p.max_depth} restarts={p.restarts}",
        f"propagations={p.propagations} domain_updates={p.domain_updates} "
        f"failures={p.failures} elapsed={p.elapsed:.3f}s"
        + (f" stop={p.stop_reason}" if p.stop_reason else ""),
    ]
    if p.cache_hits or p.cache_misses or p.cache_narrowed or p.cache_evictions:
        head.append(
            f"anchor-mask cache: hits={p.cache_hits} "
            f"misses={p.cache_misses} narrowed={p.cache_narrowed} "
            f"evictions={p.cache_evictions}"
        )
    if p.geost_dirty or p.geost_reused or p.geost_rasterized:
        head.append(
            f"incremental geost: dirty={p.geost_dirty} "
            f"reused={p.geost_reused} rasterized={p.geost_rasterized}"
        )
    if p.bitboard_rows_tested or p.bitboard_fallbacks:
        head.append(
            f"bitboard sweep: rows_tested={p.bitboard_rows_tested} "
            f"fallbacks={p.bitboard_fallbacks}"
        )
    if p.analytical_iterations or p.analytical_snapped:
        head.append(
            f"analytical: iterations={p.analytical_iterations} "
            f"snapped={p.analytical_snapped}"
        )
    if p.meta:
        head.append(
            "meta: " + " ".join(f"{k}={v}" for k, v in sorted(p.meta.items()))
        )
    if not p.propagators:
        return "\n".join(head)
    total_time = sum(r.time_s for r in p.propagators.values()) or 1e-12
    rows: List[str] = []
    width = max(len(n) for n in p.propagators) if p.propagators else 10
    width = max(width, len("propagator"))
    rows.append(
        f"{'propagator':<{width}}  {'calls':>8}  {'time':>9}  {'%':>5}  "
        f"{'prunes':>9}  {'fails':>6}  {'prunes/ms':>9}"
    )
    ordered = sorted(
        p.propagators.values(), key=lambda r: r.time_s, reverse=True
    )
    for r in ordered:
        rate = r.prunes / (r.time_s * 1e3) if r.time_s > 0 else float("inf")
        rows.append(
            f"{r.name:<{width}}  {r.calls:>8}  {r.time_s:>8.4f}s  "
            f"{100 * r.time_s / total_time:>4.1f}%  {r.prunes:>9}  "
            f"{r.failures:>6}  "
            + (f"{rate:>9.1f}" if rate != float("inf") else f"{'—':>9}")
        )
    return "\n".join(head + rows)

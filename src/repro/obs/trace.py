"""Structured solver tracing.

A :class:`Tracer` receives a stream of :class:`TraceEvent` records from
every layer of the solve path — search nodes, propagator runs, domain
updates, restarts, incumbents, LNS neighborhoods, portfolio results.  The
engine guards every emission behind a single ``tracer is not None`` check,
so a solve without a tracer pays nothing, and :class:`NullTracer`
(``enabled = False``) is normalized to *no tracer* at attach time — the
documented way to say "instrumentation compiled in, switched off".

Event kinds are dot-namespaced strings (``layer.what``); the full schema
is documented in ``docs/architecture.md`` and mirrored by
:data:`repro.obs.schema.EVENT_KINDS`.  Fine-grained kinds (per propagator
run, per domain update) are additionally gated on :attr:`Tracer.fine`
because they dominate event volume by orders of magnitude.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import Any, Dict, IO, Iterator, List, Optional

# ----------------------------------------------------------------------
# Event kinds (coarse)
# ----------------------------------------------------------------------
NODE_OPENED = "search.node"
NODE_FAILED = "search.fail"
SOLUTION = "search.solution"
RESTART = "search.restart"
INCUMBENT = "bnb.incumbent"
GEOST_SHAPE_REMOVED = "geost.shape_removed"
KERNEL_IMPRINT = "kernel.imprint"
LNS_NEIGHBORHOOD = "lns.neighborhood"
LNS_IMPROVED = "lns.improved"
#: one analytical-relaxation progress sample (every config.trace_every
#: iterations): mean per-module move and total pairwise bbox overlap
ANALYTICAL_ITERATE = "analytical.iterate"
PORTFOLIO_RESULT = "portfolio.result"
#: placement backend lifecycle (repro.core.backend) — one start/result
#: pair per `PlacementBackend.place` call, whatever the engine behind it
BACKEND_START = "backend.start"
BACKEND_RESULT = "backend.result"
ENGINE_FAILURE = "engine.failure"
#: anchor-mask cache accounting of one model construction
CACHE_MASKS = "cache.masks"
# runtime placement manager lifecycle (repro.core.runtime)
RUNTIME_ARRIVAL = "runtime.arrival"
RUNTIME_REJECT = "runtime.reject"
RUNTIME_DEFRAG = "runtime.defrag"
#: one no-break move lifecycle step (started / completed / aborted)
RUNTIME_DEFRAG_STEP = "runtime.defrag.step"
RUNTIME_DEPART = "runtime.depart"
#: reservation lifecycle (repro.core.runtime) — a booking made by the
#: temporal probe, its commit at the booked tick, or its expiry
RUNTIME_RESERVE = "runtime.reserve"
RUNTIME_RESERVATION_COMMIT = "runtime.reservation.commit"
RUNTIME_RESERVATION_EXPIRE = "runtime.reservation.expire"
#: sharded placement service lifecycle (repro.core.service) — one route
#: event per request naming the shard that took (or parked) it, a spill
#: event per cross-shard retry hop, one drain event per service drain
SERVICE_ROUTE = "service.route"
SERVICE_SPILL = "service.spill"
SERVICE_DRAIN = "service.drain"

# Event kinds (fine — gated on Tracer.fine)
PROPAGATE = "engine.propagate"
DOMAIN_UPDATE = "engine.domain"
#: incremental-geost accounting of one propagator run (dirty objects
#: filtered, cached forbidden-box lists reused, objects rasterized)
GEOST_INCREMENTAL = "geost.incremental"
#: bitboard-sweep accounting of one propagator run (vectorized frontier
#: scans performed, filters that fell back to the scalar sweep)
GEOST_BITBOARD = "geost.bitboard"


@dataclass(frozen=True)
class TraceEvent:
    """One structured event: a kind, a relative timestamp, a payload."""

    kind: str
    #: seconds since the tracer was created
    t: float
    data: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "t": self.t, **self.data}


class Tracer:
    """Base tracer: timestamps events and hands them to :meth:`record`.

    Subclasses override :meth:`record`.  Emitters call :meth:`emit` with a
    kind and keyword payload; payload values must be JSON-serializable
    scalars (or short lists of them) so every tracer can export.
    """

    #: attach-time switch — a tracer with ``enabled = False`` is treated
    #: exactly like no tracer at all (zero per-event overhead)
    enabled: bool = True
    #: receive fine-grained events (per propagator run / domain update)?
    fine: bool = True

    def __init__(self) -> None:
        self._t0 = time.monotonic()

    # ------------------------------------------------------------------
    def emit(self, kind: str, /, **data: Any) -> None:
        # positional-only: payloads may carry a field literally named
        # "kind" (runtime.defrag.step does)
        self.record(TraceEvent(kind, time.monotonic() - self._t0, data))

    def record(self, event: TraceEvent) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def close(self) -> None:
        """Flush/release resources; default is a no-op."""


class NullTracer(Tracer):
    """The disabled tracer: accepted everywhere, costs nothing.

    ``Engine.attach_tracer`` normalizes it to ``None`` (checked via
    :attr:`enabled`), so no per-event call is ever made.
    """

    enabled = False
    fine = False

    def record(self, event: TraceEvent) -> None:
        pass


class RecordingTracer(Tracer):
    """Keeps every event in memory — the test/debugging workhorse.

    Parameters
    ----------
    fine:
        Record per-propagation / per-domain-update events too (default
        True; these dominate volume on non-trivial solves).
    capacity:
        Optional ring limit; when exceeded the oldest events are dropped
        but :attr:`total` keeps counting.
    """

    def __init__(self, fine: bool = True, capacity: Optional[int] = None) -> None:
        super().__init__()
        self.fine = fine
        self.capacity = capacity
        self.events: List[TraceEvent] = []
        #: events seen (>= len(events) once the ring wrapped)
        self.total = 0

    def record(self, event: TraceEvent) -> None:
        self.total += 1
        self.events.append(event)
        if self.capacity is not None and len(self.events) > self.capacity:
            del self.events[0]

    # ------------------------------------------------------------------
    def by_kind(self, kind: str) -> List[TraceEvent]:
        return [e for e in self.events if e.kind == kind]

    def count(self, kind: str) -> int:
        return sum(1 for e in self.events if e.kind == kind)

    def kinds(self) -> Dict[str, int]:
        """Histogram of event kinds."""
        out: Dict[str, int] = {}
        for e in self.events:
            out[e.kind] = out.get(e.kind, 0) + 1
        return out

    def clear(self) -> None:
        self.events.clear()
        self.total = 0

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)


class StreamTracer(Tracer):
    """Writes one JSON object per event (JSONL) to a text stream.

    Suitable for live ``tail -f`` inspection of a long solve and for
    post-hoc analysis with any JSONL tooling.  The stream is not closed by
    :meth:`close` unless ``owns_stream`` is set (used by :meth:`to_path`).
    """

    def __init__(
        self, stream: IO[str], fine: bool = False, owns_stream: bool = False
    ) -> None:
        super().__init__()
        self.fine = fine
        self._stream = stream
        self._owns = owns_stream
        self.written = 0

    @classmethod
    def to_path(cls, path: str, fine: bool = False) -> "StreamTracer":
        return cls(open(path, "w"), fine=fine, owns_stream=True)

    def record(self, event: TraceEvent) -> None:
        self._stream.write(json.dumps(event.to_dict()) + "\n")
        self.written += 1

    def close(self) -> None:
        self._stream.flush()
        if self._owns:
            self._stream.close()

"""Process-wide profiling session.

The experiment layer builds its placers deep inside zero-argument
closures, so enabling profiling by threading a flag through every call
site would touch every experiment for no gain.  Instead a *session* is a
process-global collection point: while one is active, every
:class:`~repro.core.placer.CPPlacer` (and therefore every LNS subsolve)
profiles itself and deposits its :class:`~repro.obs.profile.SolveProfile`
here.  ``repro.experiments.runner --profile-dir`` wraps each experiment in
a session and writes the aggregated profile as a JSON artifact.

Sessions do not propagate into portfolio worker processes; the portfolio
has its own explicit profile return path (plain dicts over the process
boundary).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, List, Optional

from repro.obs.profile import SolveProfile

_active: Optional["ProfileSession"] = None


class ProfileSession:
    """Collects the profiles of every solve that runs while active."""

    def __init__(self, label: str = "") -> None:
        self.label = label
        self.profiles: List[SolveProfile] = []

    def record(self, profile: SolveProfile) -> None:
        self.profiles.append(profile)

    def merged(self) -> SolveProfile:
        """All collected profiles summed (empty profile if none ran)."""
        total = SolveProfile(meta={"session": self.label} if self.label else {})
        for p in self.profiles:
            total = total + p
        total.meta["solves"] = len(self.profiles)
        return total


def current() -> Optional[ProfileSession]:
    """The active session, or None — solvers poll this once per run."""
    return _active


@contextmanager
def profiling_session(label: str = "") -> Iterator[ProfileSession]:
    """Activate a session for the dynamic extent of the ``with`` block."""
    global _active
    previous = _active
    session = ProfileSession(label)
    _active = session
    try:
        yield session
    finally:
        _active = previous

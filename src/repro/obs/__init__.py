"""Solver observability: structured tracing + per-propagator profiling.

This package is the lowest layer of the project — it imports nothing from
the solver, so every other layer (``repro.cp``, ``repro.geost``,
``repro.core``, ``repro.experiments``) can emit into it freely.  Three
pieces:

* :mod:`repro.obs.trace` — the :class:`Tracer` event protocol with
  :class:`NullTracer` (free), :class:`RecordingTracer` (in-memory) and
  :class:`StreamTracer` (JSONL) implementations,
* :mod:`repro.obs.profile` — per-propagator wall-time/prune accounting
  aggregated into the exportable :class:`SolveProfile`, and
* :mod:`repro.obs.schema` — validators for the exported artifacts.

Typical use::

    from repro.cp import Model, Solver
    from repro.obs import RecordingTracer, SolveProfile, profile_report

    tracer = RecordingTracer()
    m = Model(tracer=tracer, profile=True)
    ...build and solve...
    profile = SolveProfile.capture(m.engine, search.stats)
    print(profile_report(profile))
    profile.save("solve.profile.json")
"""

from repro.obs.context import ProfileSession, current, profiling_session
from repro.obs.profile import (
    PROFILE_SCHEMA_VERSION,
    PropagatorProfile,
    SolveProfile,
    profile_report,
)
from repro.obs.schema import (
    EVENT_KINDS,
    PROFILE_SCHEMA,
    validate_event,
    validate_profile,
)
from repro.obs.trace import (
    NullTracer,
    RecordingTracer,
    StreamTracer,
    TraceEvent,
    Tracer,
)

__all__ = [
    "Tracer",
    "NullTracer",
    "RecordingTracer",
    "StreamTracer",
    "TraceEvent",
    "PropagatorProfile",
    "SolveProfile",
    "profile_report",
    "PROFILE_SCHEMA_VERSION",
    "PROFILE_SCHEMA",
    "EVENT_KINDS",
    "validate_profile",
    "validate_event",
    "ProfileSession",
    "profiling_session",
    "current",
]

"""Schemas for the exported observability artifacts.

The container has no ``jsonschema`` package, so validation is a small
hand-rolled checker over a declarative spec.  Two artifacts are covered:

* **profile documents** — the JSON written by
  :meth:`repro.obs.profile.SolveProfile.to_json` (validated by
  ``make profile-smoke`` and by the round-trip tests), and
* **trace events** — the JSONL lines written by
  :class:`repro.obs.trace.StreamTracer`.

``validate_*`` functions return a list of problem strings; an empty list
means the document conforms.
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.obs.profile import PROFILE_SCHEMA_VERSION

#: required top-level fields of a profile document and their types
PROFILE_SCHEMA: Dict[str, type] = {
    "schema_version": int,
    "nodes": int,
    "backtracks": int,
    "solutions": int,
    "max_depth": int,
    "restarts": int,
    "propagations": int,
    "domain_updates": int,
    "failures": int,
    "geost_dirty": int,
    "geost_reused": int,
    "geost_rasterized": int,
    "bitboard_rows_tested": int,
    "bitboard_fallbacks": int,
    "analytical_iterations": int,
    "analytical_snapped": int,
    "elapsed": float,
    "stop_reason": str,
    "propagators": list,
    "meta": dict,
}

#: required fields of one propagator row inside ``propagators``
PROPAGATOR_ROW_SCHEMA: Dict[str, type] = {
    "name": str,
    "calls": int,
    "time_s": float,
    "prunes": int,
    "failures": int,
}

#: every event kind the solve path emits, with its payload fields
EVENT_KINDS: Dict[str, List[str]] = {
    "search.node": ["var", "value", "depth"],
    "search.fail": ["var", "value", "depth"],
    "search.solution": ["depth", "count"],
    "search.restart": ["attempt", "budget"],
    "bnb.incumbent": ["objective", "nodes"],
    "engine.failure": ["var", "cause"],
    "engine.propagate": ["propagator", "prunes"],
    "engine.domain": ["var", "size", "cause"],
    "geost.shape_removed": ["object", "shape"],
    "geost.incremental": [
        "dirty", "reused", "rasterized", "rows_tested", "fallbacks",
    ],
    "geost.bitboard": ["rows_tested", "fallbacks"],
    "kernel.imprint": ["module", "shape", "x", "y"],
    "lns.neighborhood": ["iteration", "free", "frontier"],
    "lns.improved": ["iteration", "extent"],
    # analytical force relaxation: one progress sample per trace_every
    # iterations (mean per-module move, total pairwise bbox overlap)
    "analytical.iterate": ["iteration", "move", "overlap"],
    "portfolio.result": ["seed", "extent", "solved"],
    "backend.start": ["backend", "modules"],
    "backend.result": ["backend", "status", "placed", "elapsed"],
    "cache.masks": ["hits", "misses", "narrowed", "evictions"],
    "runtime.arrival": ["module", "clock", "queue"],
    "runtime.reject": ["module", "clock", "reason"],
    "runtime.defrag": [
        "clock", "trigger", "moves", "extent_before", "extent_after",
    ],
    # one event per no-break move lifecycle transition; status is
    # "started" | "completed" | "aborted", move_kind "slide" | "copy"
    # (named move_kind, not kind: the serialized event already has a
    # top-level "kind" — the event kind itself)
    "runtime.defrag.step": [
        "module", "clock", "status", "move_kind", "frames",
    ],
    "runtime.depart": ["module", "clock"],
    # reservation lifecycle: the temporal probe books a future tick,
    # the manager commits it when the tick arrives (or expires it at
    # the deadline with RejectReason.RESERVATION_EXPIRED)
    "runtime.reserve": ["module", "clock", "start"],
    "runtime.reservation.commit": ["module", "clock", "start"],
    "runtime.reservation.expire": ["module", "clock", "deadline"],
    # sharded placement service lifecycle (repro.core.service)
    "service.route": ["module", "shard", "policy", "rank"],
    "service.spill": ["module", "from_shard", "to_shard"],
    "service.drain": ["shards", "clock"],
}


def _check_fields(
    doc: Dict[str, Any], spec: Dict[str, type], where: str
) -> List[str]:
    problems = []
    for key, typ in spec.items():
        if key not in doc:
            problems.append(f"{where}: missing field {key!r}")
            continue
        value = doc[key]
        if typ is float:
            ok = isinstance(value, (int, float)) and not isinstance(value, bool)
        elif typ is int:
            ok = isinstance(value, int) and not isinstance(value, bool)
        else:
            ok = isinstance(value, typ)
        if not ok:
            problems.append(
                f"{where}: field {key!r} has type {type(value).__name__}, "
                f"expected {typ.__name__}"
            )
    return problems


def validate_profile(doc: Dict[str, Any]) -> List[str]:
    """Problems with a profile document (empty list = valid)."""
    problems = _check_fields(doc, PROFILE_SCHEMA, "profile")
    version = doc.get("schema_version")
    if isinstance(version, int) and version != PROFILE_SCHEMA_VERSION:
        problems.append(
            f"profile: schema_version {version} != {PROFILE_SCHEMA_VERSION}"
        )
    for key in (
        "nodes", "backtracks", "solutions", "max_depth", "restarts",
        "propagations", "domain_updates", "failures",
        "cache_hits", "cache_misses", "cache_narrowed", "cache_evictions",
        "geost_dirty", "geost_reused", "geost_rasterized",
        "bitboard_rows_tested", "bitboard_fallbacks",
        "analytical_iterations", "analytical_snapped",
    ):
        value = doc.get(key)
        if isinstance(value, int) and not isinstance(value, bool) and value < 0:
            problems.append(f"profile: field {key!r} is negative ({value})")
    rows = doc.get("propagators")
    if isinstance(rows, list):
        for i, row in enumerate(rows):
            if not isinstance(row, dict):
                problems.append(f"profile.propagators[{i}]: not an object")
                continue
            problems.extend(
                _check_fields(row, PROPAGATOR_ROW_SCHEMA,
                              f"profile.propagators[{i}]")
            )
    return problems


def validate_event(doc: Dict[str, Any]) -> List[str]:
    """Problems with one trace-event object (empty list = valid)."""
    problems = []
    kind = doc.get("kind")
    if not isinstance(kind, str):
        return ["event: missing or non-string 'kind'"]
    if "t" not in doc or isinstance(doc["t"], bool) or not isinstance(
        doc["t"], (int, float)
    ):
        problems.append(f"event {kind}: missing or non-numeric 't'")
    if kind not in EVENT_KINDS:
        problems.append(f"event: unknown kind {kind!r}")
        return problems
    for fieldname in EVENT_KINDS[kind]:
        if fieldname not in doc:
            problems.append(f"event {kind}: missing field {fieldname!r}")
    return problems

"""Restart-based search.

Chronological DFS is brittle on packing instances: one unlucky early
decision condemns the whole dive (heavy-tailed runtime distributions).
The standard remedy is randomized restarts — run DFS with a randomized
value order under a failure budget, and restart with a grown budget when
it is exceeded.  Budgets follow the Luby sequence (1, 1, 2, 1, 1, 2, 4,
...), which is within a log factor of the optimal universal restart
schedule (Luby, Sinclair, Zuckerman 1993).

Used by the placer as an optional construction strategy and by ablation
A4; exposed generally because it is a solver-level facility.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence

from repro.cp.branching import ValueSelector, VarSelector, input_order
from repro.cp.engine import Engine
from repro.cp.search import DepthFirstSearch, SearchLimit, Solution
from repro.cp.stats import SearchStats
from repro.cp.variable import IntVar
from repro.obs.trace import RESTART


def luby(i: int) -> int:
    """The i-th term (1-based) of the Luby restart sequence."""
    if i <= 0:
        raise ValueError("luby is defined for i >= 1")
    k = 1
    while (1 << k) - 1 < i:  # smallest k with 2^k - 1 >= i
        k += 1
    if (1 << k) - 1 == i:
        return 1 << (k - 1)
    return luby(i - ((1 << (k - 1)) - 1))


def shuffled_min_first(seed: int) -> ValueSelector:
    """Value order: minimum first, remaining values shuffled.

    Keeps the bottom-left bias that the extent objective wants while
    diversifying the tail — exactly what restarts need.
    """
    rng = random.Random(seed)

    def pick(v: IntVar):
        vals = list(v.domain)
        if len(vals) <= 1:
            return vals
        head, tail = vals[0], vals[1:]
        rng.shuffle(tail)
        return [head] + tail

    return pick


@dataclass
class RestartingSearch:
    """First-solution search with Luby restarts and value randomization."""

    engine: Engine
    decision_vars: Sequence[IntVar]
    var_select: VarSelector = input_order
    base_failures: int = 64
    time_limit: Optional[float] = None
    seed: int = 0
    #: called with the solution while the engine still holds its state
    #: (domains fixed) — lets callers extract derived structures
    on_solution: Optional[object] = None
    stats: SearchStats = field(default_factory=SearchStats)
    #: number of restarts performed in the last :meth:`first_solution` call
    restarts: int = 0

    def first_solution(self) -> Optional[Solution]:
        start = time.monotonic()
        deadline = (
            start + self.time_limit if self.time_limit is not None else None
        )
        self.restarts = 0
        attempt = 0
        while True:
            attempt += 1
            remaining = (
                None if deadline is None else max(0.0, deadline - time.monotonic())
            )
            if remaining is not None and remaining == 0.0:
                self.stats.stop_reason = "time"
                return None
            limit = SearchLimit(
                time_seconds=remaining,
                failures=self.base_failures * luby(attempt),
            )
            search = DepthFirstSearch(
                self.engine,
                self.decision_vars,
                var_select=self.var_select,
                val_select=shuffled_min_first(self.seed + attempt),
                limit=limit,
            )
            solution = None
            for sol in search.solutions():
                if self.on_solution is not None:
                    self.on_solution(sol)  # engine state is live here
                solution = sol
                break
            self.stats = self.stats + search.stats
            if solution is not None:
                self.stats.stop_reason = ""
                return solution
            if search.stats.stop_reason == "exhausted":
                self.stats.stop_reason = "exhausted"
                return None  # proven infeasible
            if search.stats.stop_reason == "time":
                self.stats.stop_reason = "time"
                return None
            self.restarts += 1  # failure budget exceeded: restart
            if self.engine.tracer is not None:
                self.engine.tracer.emit(
                    RESTART,
                    attempt=attempt,
                    budget=self.base_failures * luby(attempt),
                )

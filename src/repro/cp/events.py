"""Domain-modification event flags.

Propagators subscribe to variables with an event mask; the engine wakes a
propagator only when a modification matching its mask occurs.  Masks compose
with ``|``.
"""

from __future__ import annotations

from enum import IntFlag


class Event(IntFlag):
    """What changed about a variable's domain."""

    #: Any value was removed from the domain.
    DOMAIN = 1
    #: The minimum or maximum changed.
    BOUNDS = 2
    #: The domain became a singleton.
    FIX = 4

    #: Convenience: wake on everything.
    ANY = DOMAIN | BOUNDS | FIX

    #: What interval (bounds-consistency) propagators need: any change of
    #: min/max, plus fixing.  Interior hole removals are invisible to a
    #: filter that only reads ``min()``/``max()``, so subscribing with this
    #: mask instead of :data:`ANY` skips those wake-ups soundly.  (With the
    #: engine's ``classify``, a FIX from size >= 2 always moves a bound, so
    #: INTERVAL and BOUNDS wake the same propagators; FIX is kept in the
    #: mask for propagators that branch on it in ``on_event``.)
    INTERVAL = BOUNDS | FIX


def classify(old_min: int, old_max: int, old_size: int,
             new_min: int, new_max: int, new_size: int) -> Event:
    """Compute the event set implied by a domain shrink."""
    ev = Event.DOMAIN
    if new_min != old_min or new_max != old_max:
        ev |= Event.BOUNDS
    if new_size == 1 and old_size != 1:
        ev |= Event.FIX
    return ev

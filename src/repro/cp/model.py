"""Declarative model layer on top of the engine.

:class:`Model` offers a compact API for building constraint models —
variable factories and constraint helpers that construct the propagators in
:mod:`repro.cp.constraints` — so application code (the placement model, the
tests, the examples) reads like the formulation in the paper rather than
like propagator plumbing.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.cp.constraints import (
    AbsDifference,
    AllDifferent,
    AtLeast,
    AtMost,
    Count,
    MinDistance,
    BoolOr,
    Cumulative,
    DiffN,
    Element,
    EqualOffset,
    IffInSet,
    IffLessEqual,
    LessEqualOffset,
    LinearEqual,
    LinearLessEqual,
    Maximum,
    Minimum,
    NotEqual,
    NotEqualOffset,
    Rect,
    SumOfTwo,
    TableConstraint,
    Task,
)
from repro.cp.domain import Domain
from repro.cp.engine import Engine
from repro.cp.propagator import Propagator
from repro.cp.variable import IntVar
from repro.obs.trace import Tracer


class Model:
    """A constraint model: an engine plus sugar for building it.

    ``tracer`` and ``profile`` configure the engine's observability hooks
    (:mod:`repro.obs`) before any constraint is posted, so the initial
    root propagation is captured too.
    """

    def __init__(
        self,
        name: str = "model",
        tracer: Optional[Tracer] = None,
        profile: bool = False,
    ) -> None:
        self.name = name
        self.engine = Engine(tracer=tracer, profile=profile)
        self.constraints: List[Propagator] = []

    # ------------------------------------------------------------------
    # Variables
    # ------------------------------------------------------------------
    def int_var(self, lo: int, hi: int, name: str = "") -> IntVar:
        return self.engine.new_var(lo, hi, name)

    def int_var_from(self, values: Sequence[int], name: str = "") -> IntVar:
        return self.engine.new_var_from(Domain(values), name)

    def bool_var(self, name: str = "") -> IntVar:
        return self.engine.new_var(0, 1, name)

    def constant(self, value: int, name: str = "") -> IntVar:
        return self.engine.new_var(value, value, name or f"c{value}")

    # ------------------------------------------------------------------
    # Constraint helpers (each posts immediately and returns the propagator)
    # ------------------------------------------------------------------
    def post(self, propagator: Propagator) -> Propagator:
        self.constraints.append(propagator)
        return self.engine.post(propagator)

    def add_le(self, x: IntVar, y: IntVar, offset: int = 0) -> Propagator:
        """``x + offset <= y``."""
        return self.post(LessEqualOffset(x, y, offset))

    def add_eq(self, x: IntVar, y: IntVar, offset: int = 0) -> Propagator:
        """``x == y + offset``."""
        return self.post(EqualOffset(x, y, offset))

    def add_ne(self, x: IntVar, y: IntVar, offset: int = 0) -> Propagator:
        """``x != y + offset``."""
        if offset == 0:
            return self.post(NotEqual(x, y))
        return self.post(NotEqualOffset(x, y, offset))

    def add_sum(self, z: IntVar, x: IntVar, y: IntVar) -> Propagator:
        """``z == x + y``."""
        return self.post(SumOfTwo(z, x, y))

    def add_linear_le(
        self, coeffs: Sequence[int], xs: Sequence[IntVar], c: int
    ) -> Propagator:
        return self.post(LinearLessEqual(coeffs, xs, c))

    def add_linear_eq(
        self, coeffs: Sequence[int], xs: Sequence[IntVar], c: int
    ) -> Propagator:
        return self.post(LinearEqual(coeffs, xs, c))

    def add_element(
        self, table: Sequence[int], index: IntVar, result: IntVar
    ) -> Propagator:
        return self.post(Element(table, index, result))

    def element_of(
        self, table: Sequence[int], index: IntVar, name: str = ""
    ) -> IntVar:
        """Create and return ``result`` with ``result == table[index]``."""
        result = self.int_var(min(table), max(table), name or "elem")
        self.add_element(table, index, result)
        return result

    def add_max(self, m: IntVar, xs: Sequence[IntVar]) -> Propagator:
        return self.post(Maximum(m, xs))

    def max_of(self, xs: Sequence[IntVar], name: str = "max") -> IntVar:
        m = self.int_var(
            min(x.min() for x in xs), max(x.max() for x in xs), name
        )
        self.add_max(m, xs)
        return m

    def add_min(self, m: IntVar, xs: Sequence[IntVar]) -> Propagator:
        return self.post(Minimum(m, xs))

    def add_table(
        self, xs: Sequence[IntVar], tuples: Sequence[Tuple[int, ...]]
    ) -> Propagator:
        return self.post(TableConstraint(xs, tuples))

    def add_alldifferent(self, xs: Sequence[IntVar]) -> Propagator:
        return self.post(AllDifferent(xs))

    def add_count(
        self, xs: Sequence[IntVar], value: int, lo: int = 0,
        hi: "int | None" = None,
    ) -> Propagator:
        """``lo <= |{i : x_i == value}| <= hi``."""
        return self.post(Count(xs, value, lo, hi))

    def add_atmost(self, xs: Sequence[IntVar], value: int, n: int) -> Propagator:
        return self.post(AtMost(xs, value, n))

    def add_atleast(self, xs: Sequence[IntVar], value: int, n: int) -> Propagator:
        return self.post(AtLeast(xs, value, n))

    def add_abs_diff(self, z: IntVar, x: IntVar, y: IntVar) -> Propagator:
        """``z == |x - y|``."""
        return self.post(AbsDifference(z, x, y))

    def abs_diff_of(self, x: IntVar, y: IntVar, name: str = "") -> IntVar:
        """Create and return ``z`` with ``z == |x - y|``."""
        hi = max(x.max() - y.min(), y.max() - x.min(), 0)
        z = self.int_var(0, max(hi, 0), name or "absdiff")
        self.add_abs_diff(z, x, y)
        return z

    def add_min_distance(self, x: IntVar, y: IntVar, d: int) -> Propagator:
        """``|x - y| >= d``."""
        return self.post(MinDistance(x, y, d))

    def add_iff_le(self, b: IntVar, x: IntVar, c: int) -> Propagator:
        return self.post(IffLessEqual(b, x, c))

    def add_iff_in(self, b: IntVar, x: IntVar, values: Sequence[int]) -> Propagator:
        return self.post(IffInSet(b, x, values))

    def add_or(self, bs: Sequence[IntVar]) -> Propagator:
        return self.post(BoolOr(bs))

    def add_cumulative(self, tasks: Sequence[Task], capacity: int) -> Propagator:
        return self.post(Cumulative(tasks, capacity))

    def add_diffn(self, rects: Sequence[Rect]) -> Propagator:
        return self.post(DiffN(rects))

    # ------------------------------------------------------------------
    def __repr__(self) -> str:
        return (
            f"Model({self.name!r}, vars={len(self.engine.variables)}, "
            f"constraints={len(self.constraints)})"
        )

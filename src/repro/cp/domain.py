"""Bitset-backed finite integer domains.

A :class:`Domain` is an immutable set of integers represented as a Python
arbitrary-precision integer bitmask plus an offset.  CPython big-int bit
operations are implemented in C over 30-bit limbs, which makes them an
excellent vectorized representation for the domain sizes this project needs
(coordinates on FPGA fabrics of a few hundred tiles per axis).

Immutability keeps trailing trivial: a variable's state is restored by
re-assigning the previous :class:`Domain` object, so no copy-on-write or
delta bookkeeping is required.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional


def _mask_of(values: Iterable[int], offset: int) -> int:
    mask = 0
    for v in values:
        mask |= 1 << (v - offset)
    return mask


class Domain:
    """An immutable finite set of integers.

    Internally stores ``offset`` (the smallest value the mask can express)
    and ``mask`` where bit ``i`` set means ``offset + i`` is in the domain.
    The representation is normalized so that bit 0 of a non-empty mask is
    always set (``offset == min``).
    """

    __slots__ = ("_offset", "_mask")

    def __init__(self, values: Iterable[int] = ()):  # noqa: D107
        values = list(values)
        if not values:
            self._offset = 0
            self._mask = 0
            return
        offset = min(values)
        self._offset = offset
        self._mask = _mask_of(values, offset)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @staticmethod
    def from_mask(mask: int, offset: int) -> "Domain":
        """Build a domain directly from a bitmask (normalizing offset)."""
        d = Domain.__new__(Domain)
        if mask == 0:
            d._offset = 0
            d._mask = 0
            return d
        # normalize: shift so bit 0 is set
        low = (mask & -mask).bit_length() - 1
        d._offset = offset + low
        d._mask = mask >> low
        return d

    @staticmethod
    def range(lo: int, hi: int) -> "Domain":
        """Inclusive integer range ``[lo, hi]``; empty if ``lo > hi``."""
        if lo > hi:
            return EMPTY_DOMAIN
        return Domain.from_mask((1 << (hi - lo + 1)) - 1, lo)

    @staticmethod
    def singleton(value: int) -> "Domain":
        return Domain.from_mask(1, value)

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    @property
    def mask(self) -> int:
        return self._mask

    @property
    def offset(self) -> int:
        return self._offset

    def is_empty(self) -> bool:
        return self._mask == 0

    def is_singleton(self) -> bool:
        m = self._mask
        return m != 0 and (m & (m - 1)) == 0

    def __len__(self) -> int:
        return self._mask.bit_count()

    def __bool__(self) -> bool:
        return self._mask != 0

    def min(self) -> int:
        if self._mask == 0:
            raise ValueError("min() of empty domain")
        return self._offset  # normalized: bit 0 set

    def max(self) -> int:
        if self._mask == 0:
            raise ValueError("max() of empty domain")
        return self._offset + self._mask.bit_length() - 1

    def value(self) -> int:
        """The single value of a singleton domain."""
        if not self.is_singleton():
            raise ValueError(f"domain {self} is not a singleton")
        return self._offset

    def __contains__(self, v: int) -> bool:
        i = v - self._offset
        return i >= 0 and (self._mask >> i) & 1 == 1

    def __iter__(self) -> Iterator[int]:
        mask, offset = self._mask, self._offset
        while mask:
            low = mask & -mask
            yield offset + low.bit_length() - 1
            mask ^= low

    def __reversed__(self) -> Iterator[int]:
        return reversed(list(self))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Domain):
            return NotImplemented
        return self._mask == other._mask and (
            self._mask == 0 or self._offset == other._offset
        )

    def __hash__(self) -> int:
        return hash((self._mask, self._offset if self._mask else 0))

    def __repr__(self) -> str:
        if self._mask == 0:
            return "Domain({})"
        vals = list(self)
        if len(vals) > 12:
            shown = ", ".join(map(str, vals[:10]))
            return f"Domain({{{shown}, ... {vals[-1]}}} size={len(vals)})"
        return f"Domain({{{', '.join(map(str, vals))}}})"

    # ------------------------------------------------------------------
    # Set algebra (all return new Domain objects)
    # ------------------------------------------------------------------
    def _aligned(self, other: "Domain") -> tuple[int, int, int]:
        """Return (mask_self, mask_other, offset) on a common offset."""
        if self._mask == 0:
            return 0, other._mask, other._offset
        if other._mask == 0:
            return self._mask, 0, self._offset
        off = min(self._offset, other._offset)
        return (
            self._mask << (self._offset - off),
            other._mask << (other._offset - off),
            off,
        )

    def intersect(self, other: "Domain") -> "Domain":
        a, b, off = self._aligned(other)
        return Domain.from_mask(a & b, off)

    def union(self, other: "Domain") -> "Domain":
        a, b, off = self._aligned(other)
        return Domain.from_mask(a | b, off)

    def difference(self, other: "Domain") -> "Domain":
        a, b, off = self._aligned(other)
        return Domain.from_mask(a & ~b, off)

    def remove(self, v: int) -> "Domain":
        i = v - self._offset
        if i < 0 or (self._mask >> i) & 1 == 0:
            return self
        return Domain.from_mask(self._mask ^ (1 << i), self._offset)

    def remove_below(self, lo: int) -> "Domain":
        """Keep only values >= lo."""
        if self._mask == 0 or lo <= self._offset:
            return self
        shift = lo - self._offset
        return Domain.from_mask(self._mask >> shift, lo)

    def remove_above(self, hi: int) -> "Domain":
        """Keep only values <= hi."""
        if self._mask == 0:
            return self
        width = hi - self._offset + 1
        if width <= 0:
            return EMPTY_DOMAIN
        if width >= self._mask.bit_length():
            return self
        return Domain.from_mask(self._mask & ((1 << width) - 1), self._offset)

    def clamp(self, lo: int, hi: int) -> "Domain":
        return self.remove_below(lo).remove_above(hi)

    def shift(self, delta: int) -> "Domain":
        """Domain of ``{v + delta}``."""
        if self._mask == 0:
            return self
        return Domain.from_mask(self._mask, self._offset + delta)

    def negate(self) -> "Domain":
        """Domain of ``{-v}``."""
        if self._mask == 0:
            return self
        hi = self.max()
        # reverse the bit pattern within its width arithmetically: peel set
        # bits lowest-first and mirror each around the width.  O(popcount)
        # big-int operations — no text round-trip, and cheap on the sparse
        # wide domains where the string detour was quadratic in width.
        width = self._mask.bit_length()
        mask = self._mask
        rev = 0
        while mask:
            low = mask & -mask
            rev |= 1 << (width - low.bit_length())
            mask ^= low
        return Domain.from_mask(rev, -hi)

    def next_value(self, v: int) -> Optional[int]:
        """Smallest domain value >= v, or None."""
        d = self.remove_below(v)
        return d.min() if d else None

    def prev_value(self, v: int) -> Optional[int]:
        """Largest domain value <= v, or None."""
        d = self.remove_above(v)
        return d.max() if d else None

    def is_subset_of(self, other: "Domain") -> bool:
        a, b, _ = self._aligned(other)
        return a & ~b == 0

    # ------------------------------------------------------------------
    # NumPy bridges (hot paths in the placement kernel)
    # ------------------------------------------------------------------
    def to_bool_array(self, length: int):
        """Boolean vector v of the given length with ``v[i] = (i in self)``.

        Requires all domain values to lie within ``[0, length)``.
        """
        import numpy as np

        if self._mask == 0:
            return np.zeros(length, dtype=bool)
        if self._offset < 0 or self.max() >= length:
            raise ValueError(
                f"domain [{self.min()},{self.max()}] outside [0,{length})"
            )
        full = self._mask << self._offset
        raw = np.frombuffer(
            full.to_bytes((length + 7) // 8, "little"), dtype=np.uint8
        )
        return np.unpackbits(raw, bitorder="little")[:length].astype(bool)

    @staticmethod
    def from_bool_array(vec) -> "Domain":
        """Domain ``{i : vec[i]}`` from a boolean vector."""
        import numpy as np

        bits = np.packbits(np.asarray(vec, dtype=bool), bitorder="little")
        return Domain.from_mask(int.from_bytes(bits.tobytes(), "little"), 0)


EMPTY_DOMAIN = Domain()

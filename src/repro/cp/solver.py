"""High-level solving facade.

Wraps model + search + (optional) objective into the three calls the rest
of the project uses: :meth:`Solver.solve` (first solution),
:meth:`Solver.enumerate` (all solutions) and :meth:`Solver.minimize`
(branch-and-bound).  Results carry a status, the solution, and statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, List, Optional, Sequence

from repro.cp.bnb import BnBResult, BranchAndBound, Objective
from repro.cp.branching import ValueSelector, VarSelector, input_order, min_value
from repro.cp.engine import Inconsistent
from repro.cp.model import Model
from repro.cp.search import DepthFirstSearch, SearchLimit, Solution
from repro.cp.stats import SearchStats
from repro.cp.variable import IntVar


class Status(Enum):
    """Outcome classification of a solver run."""

    OPTIMAL = "optimal"          # minimize: proved best; solve: found & exhausted
    FEASIBLE = "feasible"        # found a solution but stopped on a limit
    INFEASIBLE = "infeasible"    # exhausted with no solution
    UNKNOWN = "unknown"          # stopped on a limit with no solution


@dataclass
class SolveResult:
    status: Status
    solution: Optional[Solution] = None
    objective: Optional[int] = None
    stats: SearchStats = field(default_factory=SearchStats)
    trajectory: List[tuple] = field(default_factory=list)

    @property
    def found(self) -> bool:
        return self.solution is not None


class Solver:
    """Search configuration bound to a model."""

    def __init__(
        self,
        model: Model,
        decision_vars: Sequence[IntVar],
        var_select: VarSelector = input_order,
        val_select: ValueSelector = min_value,
        limit: Optional[SearchLimit] = None,
    ) -> None:
        self.model = model
        self.decision_vars = list(decision_vars)
        self.var_select = var_select
        self.val_select = val_select
        self.limit = limit

    # ------------------------------------------------------------------
    def _search(self) -> DepthFirstSearch:
        return DepthFirstSearch(
            self.model.engine,
            self.decision_vars,
            var_select=self.var_select,
            val_select=self.val_select,
            limit=self.limit,
        )

    def solve(self) -> SolveResult:
        """Find one solution."""
        search = self._search()
        sol = search.first_solution()
        if sol is not None:
            return SolveResult(Status.FEASIBLE, sol, stats=search.stats)
        status = (
            Status.INFEASIBLE
            if search.stats.stop_reason == "exhausted"
            else Status.UNKNOWN
        )
        return SolveResult(status, stats=search.stats)

    def enumerate(
        self, callback: Optional[Callable[[Solution], None]] = None
    ) -> List[Solution]:
        """All solutions (subject to limits)."""
        search = self._search()
        out = []
        for sol in search.solutions():
            out.append(sol)
            if callback is not None:
                callback(sol)
        return out

    def minimize(self, objective_var: IntVar) -> SolveResult:
        """Branch-and-bound minimization of ``objective_var``."""
        bnb = BranchAndBound(
            self.model.engine,
            Objective.minimize(objective_var),
            self.decision_vars,
            var_select=self.var_select,
            val_select=self.val_select,
            limit=self.limit,
        )
        res: BnBResult = bnb.run()
        if res.best is None:
            status = (
                Status.INFEASIBLE if res.proved_optimal else Status.UNKNOWN
            )
            return SolveResult(status, stats=res.stats)
        status = Status.OPTIMAL if res.proved_optimal else Status.FEASIBLE
        return SolveResult(
            status, res.best, res.objective, res.stats, list(res.trajectory)
        )

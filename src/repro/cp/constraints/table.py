"""Positive table constraint (GAC via lazily-repaired supports).

Used for small extensional relations — e.g. coupling a module's shape
variable with a discrete property that has no arithmetic structure.  The
implementation keeps, per (variable, value), a pointer into the tuple list
(the classic "last support" scheme of GAC-3 with residues).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.cp.domain import Domain
from repro.cp.engine import Engine, Inconsistent
from repro.cp.propagator import Priority, Propagator
from repro.cp.variable import IntVar


class TableConstraint(Propagator):
    """``(x_1, ..., x_n) in tuples``."""

    priority = Priority.EXPENSIVE

    def __init__(self, xs: Sequence[IntVar], tuples: Sequence[Tuple[int, ...]]) -> None:
        super().__init__("table")
        self.xs = list(xs)
        arity = len(self.xs)
        self.tuples: List[Tuple[int, ...]] = [tuple(t) for t in tuples]
        for t in self.tuples:
            if len(t) != arity:
                raise ValueError(f"tuple {t} has arity {len(t)}, expected {arity}")
        # residue: (var position, value) -> index of last known support
        self._residue: Dict[Tuple[int, int], int] = {}

    def variables(self) -> Sequence[IntVar]:
        return self.xs

    def _is_valid(self, t: Tuple[int, ...]) -> bool:
        return all(v in x.domain for v, x in zip(t, self.xs))

    def _find_support(self, pos: int, value: int) -> bool:
        key = (pos, value)
        idx = self._residue.get(key)
        if idx is not None:
            t = self.tuples[idx]
            if t[pos] == value and self._is_valid(t):
                return True
        for i, t in enumerate(self.tuples):
            if t[pos] == value and self._is_valid(t):
                self._residue[key] = i
                return True
        return False

    def propagate(self, engine: Engine) -> None:
        for pos, x in enumerate(self.xs):
            keep = [v for v in x.domain if self._find_support(pos, v)]
            if not keep:
                raise Inconsistent(f"{self.name}: {x.name} has no supported value")
            x.set_domain(Domain(keep), cause=self)
        if all(x.is_fixed() for x in self.xs):
            self.deactivate(engine)

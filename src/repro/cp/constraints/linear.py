"""Linear constraints ``sum(a_i * x_i) {<=,==} c`` with bounds propagation.

Classic interval reasoning: for each term, the residual slack of the other
terms bounds its feasible range.  Coefficients may be negative.
"""

from __future__ import annotations

from typing import Sequence

from repro.cp.engine import Engine
from repro.cp.events import Event
from repro.cp.propagator import Priority, Propagator
from repro.cp.variable import IntVar


def _term_bounds(a: int, x: IntVar) -> tuple[int, int]:
    """(min, max) of the term ``a * x``."""
    lo, hi = x.min(), x.max()
    return (a * lo, a * hi) if a >= 0 else (a * hi, a * lo)


class LinearLessEqual(Propagator):
    """``sum(a_i * x_i) <= c``."""

    priority = Priority.LINEAR

    def __init__(self, coeffs: Sequence[int], xs: Sequence[IntVar], c: int) -> None:
        super().__init__("linear<=")
        if len(coeffs) != len(xs):
            raise ValueError("coeffs and variables must have equal length")
        pairs = [(a, x) for a, x in zip(coeffs, xs) if a != 0]
        self.coeffs = [a for a, _ in pairs]
        self.xs = [x for _, x in pairs]
        self.c = c

    def variables(self) -> Sequence[IntVar]:
        return self.xs

    def post(self, engine: Engine) -> None:
        for v in self.xs:
            v.watch(self, Event.BOUNDS)
        engine.schedule(self)

    def propagate(self, engine: Engine) -> None:
        mins = []
        total_min = 0
        for a, x in zip(self.coeffs, self.xs):
            lo, _ = _term_bounds(a, x)
            mins.append(lo)
            total_min += lo
        for a, x, lo in zip(self.coeffs, self.xs, mins):
            # a*x <= c - (total_min - lo)
            slack = self.c - (total_min - lo)
            if a > 0:
                x.remove_above(slack // a, cause=self)
            else:  # a < 0: x >= ceil(slack / a) = -((-slack) // a)
                x.remove_below(-(-slack // a), cause=self)
        # entailment
        total_max = sum(_term_bounds(a, x)[1] for a, x in zip(self.coeffs, self.xs))
        if total_max <= self.c:
            self.deactivate(engine)


class LinearEqual(Propagator):
    """``sum(a_i * x_i) == c``."""

    priority = Priority.LINEAR

    def __init__(self, coeffs: Sequence[int], xs: Sequence[IntVar], c: int) -> None:
        super().__init__("linear==")
        if len(coeffs) != len(xs):
            raise ValueError("coeffs and variables must have equal length")
        pairs = [(a, x) for a, x in zip(coeffs, xs) if a != 0]
        self.coeffs = [a for a, _ in pairs]
        self.xs = [x for _, x in pairs]
        self.c = c

    def variables(self) -> Sequence[IntVar]:
        return self.xs

    def post(self, engine: Engine) -> None:
        for v in self.xs:
            v.watch(self, Event.BOUNDS)
        engine.schedule(self)

    def propagate(self, engine: Engine) -> None:
        from repro.cp.engine import Inconsistent

        # iterate to an internal fixpoint: our own updates do not re-wake us,
        # and pruning one term changes the residual bounds of the others
        changed = True
        while changed:
            changed = False
            bounds = [_term_bounds(a, x) for a, x in zip(self.coeffs, self.xs)]
            total_min = sum(b[0] for b in bounds)
            total_max = sum(b[1] for b in bounds)
            if total_min > self.c or total_max < self.c:
                raise Inconsistent(
                    f"{self.name}: [{total_min},{total_max}] excludes {self.c}"
                )
            for (a, x), (lo, hi) in zip(zip(self.coeffs, self.xs), bounds):
                # a*x in [c - (total_max - hi), c - (total_min - lo)]
                t_lo = self.c - (total_max - hi)
                t_hi = self.c - (total_min - lo)
                if a > 0:
                    changed |= x.remove_below(-(-t_lo // a), cause=self)  # ceil
                    changed |= x.remove_above(t_hi // a, cause=self)      # floor
                else:
                    changed |= x.remove_below(-(-t_hi // a), cause=self)
                    changed |= x.remove_above(t_lo // a, cause=self)

"""Counting constraints: ``count(v in xs) {<=,>=,==} n``.

Used by models that cap how many modules may select a particular design
alternative (e.g. at most k modules using the BRAM-heavy layout when BRAM
columns are scarce) and by tests as a simple global with known semantics.
"""

from __future__ import annotations

from typing import Sequence

from repro.cp.engine import Engine, Inconsistent
from repro.cp.events import Event
from repro.cp.propagator import Priority, Propagator
from repro.cp.variable import IntVar


class Count(Propagator):
    """``lo <= |{i : x_i == value}| <= hi``."""

    priority = Priority.LINEAR

    def __init__(
        self, xs: Sequence[IntVar], value: int, lo: int = 0, hi: int | None = None
    ) -> None:
        super().__init__(f"count(=={value})")
        if not xs:
            raise ValueError("Count needs at least one variable")
        self.xs = list(xs)
        self.value = value
        self.lo = lo
        self.hi = len(xs) if hi is None else hi
        if not 0 <= self.lo <= self.hi:
            raise ValueError(f"invalid count bounds [{self.lo}, {self.hi}]")

    def variables(self) -> Sequence[IntVar]:
        return self.xs

    def propagate(self, engine: Engine) -> None:
        v = self.value
        fixed_to = [x for x in self.xs if x.is_fixed() and x.value() == v]
        can_be = [x for x in self.xs if v in x.domain]
        n_min = len(fixed_to)
        n_max = len(can_be)
        if n_min > self.hi or n_max < self.lo:
            raise Inconsistent(
                f"{self.name}: count in [{n_min},{n_max}] "
                f"outside [{self.lo},{self.hi}]"
            )
        if n_min == self.hi:
            # saturated: every undecided variable loses the value
            for x in can_be:
                if not x.is_fixed():
                    x.remove(v, cause=self)
            self.deactivate(engine)
        elif n_max == self.lo:
            # every variable that still can take the value must
            for x in can_be:
                if not x.is_fixed():
                    x.fix(v, cause=self)
            self.deactivate(engine)


class AtMost(Count):
    """``|{i : x_i == value}| <= n``."""

    def __init__(self, xs: Sequence[IntVar], value: int, n: int) -> None:
        super().__init__(xs, value, lo=0, hi=n)
        self.name = f"atmost({n},=={value})"


class AtLeast(Count):
    """``|{i : x_i == value}| >= n``."""

    def __init__(self, xs: Sequence[IntVar], value: int, n: int) -> None:
        super().__init__(xs, value, lo=n, hi=len(list(xs)))
        self.name = f"atleast({n},=={value})"

"""Binary arithmetic constraints.

These are the cheap (:attr:`Priority.UNARY`) workhorses used to stitch
larger models together: offset inequalities, offset equalities (full domain
consistency via mask shifts — domains are bitsets, so ``x == y + c`` is a
single shift-and-intersect), disequalities, and ternary addition.
"""

from __future__ import annotations

from typing import Sequence

from repro.cp.engine import Engine
from repro.cp.events import Event
from repro.cp.propagator import Priority, Propagator
from repro.cp.variable import IntVar


class LessEqualOffset(Propagator):
    """``x + c <= y`` with bounds propagation."""

    priority = Priority.UNARY

    def __init__(self, x: IntVar, y: IntVar, c: int = 0) -> None:
        super().__init__(f"{x.name}+{c}<={y.name}")
        self.x, self.y, self.c = x, y, c

    def variables(self) -> Sequence[IntVar]:
        return (self.x, self.y)

    def post(self, engine: Engine) -> None:
        self.x.watch(self, Event.BOUNDS)
        self.y.watch(self, Event.BOUNDS)
        engine.schedule(self)

    def propagate(self, engine: Engine) -> None:
        self.y.remove_below(self.x.min() + self.c, cause=self)
        self.x.remove_above(self.y.max() - self.c, cause=self)
        if self.x.max() + self.c <= self.y.min():
            self.deactivate(engine)  # entailed


class EqualOffset(Propagator):
    """``x == y + c`` with full domain consistency."""

    priority = Priority.UNARY

    def __init__(self, x: IntVar, y: IntVar, c: int = 0) -> None:
        super().__init__(f"{x.name}=={y.name}+{c}")
        self.x, self.y, self.c = x, y, c

    def variables(self) -> Sequence[IntVar]:
        return (self.x, self.y)

    def propagate(self, engine: Engine) -> None:
        dx = self.x.domain.intersect(self.y.domain.shift(self.c))
        self.x.set_domain(dx, cause=self)
        self.y.set_domain(self.y.domain.intersect(dx.shift(-self.c)), cause=self)


class NotEqual(Propagator):
    """``x != y``; prunes once either side is fixed."""

    priority = Priority.UNARY

    def __init__(self, x: IntVar, y: IntVar) -> None:
        super().__init__(f"{x.name}!={y.name}")
        self.x, self.y = x, y

    def variables(self) -> Sequence[IntVar]:
        return (self.x, self.y)

    def post(self, engine: Engine) -> None:
        self.x.watch(self, Event.FIX)
        self.y.watch(self, Event.FIX)
        engine.schedule(self)

    def propagate(self, engine: Engine) -> None:
        if self.x.is_fixed():
            self.y.remove(self.x.value(), cause=self)
            self.deactivate(engine)
        elif self.y.is_fixed():
            self.x.remove(self.y.value(), cause=self)
            self.deactivate(engine)


class NotEqualOffset(Propagator):
    """``x != y + c``."""

    priority = Priority.UNARY

    def __init__(self, x: IntVar, y: IntVar, c: int) -> None:
        super().__init__(f"{x.name}!={y.name}+{c}")
        self.x, self.y, self.c = x, y, c

    def variables(self) -> Sequence[IntVar]:
        return (self.x, self.y)

    def post(self, engine: Engine) -> None:
        self.x.watch(self, Event.FIX)
        self.y.watch(self, Event.FIX)
        engine.schedule(self)

    def propagate(self, engine: Engine) -> None:
        if self.x.is_fixed():
            self.y.remove(self.x.value() - self.c, cause=self)
            self.deactivate(engine)
        elif self.y.is_fixed():
            self.x.remove(self.y.value() + self.c, cause=self)
            self.deactivate(engine)


class SumOfTwo(Propagator):
    """``z == x + y`` with bounds propagation."""

    priority = Priority.UNARY

    def __init__(self, z: IntVar, x: IntVar, y: IntVar) -> None:
        super().__init__(f"{z.name}=={x.name}+{y.name}")
        self.z, self.x, self.y = z, x, y

    def variables(self) -> Sequence[IntVar]:
        return (self.z, self.x, self.y)

    def post(self, engine: Engine) -> None:
        for v in self.variables():
            v.watch(self, Event.BOUNDS)
        engine.schedule(self)

    def propagate(self, engine: Engine) -> None:
        z, x, y = self.z, self.x, self.y
        z.remove_below(x.min() + y.min(), cause=self)
        z.remove_above(x.max() + y.max(), cause=self)
        x.remove_below(z.min() - y.max(), cause=self)
        x.remove_above(z.max() - y.min(), cause=self)
        y.remove_below(z.min() - x.max(), cause=self)
        y.remove_above(z.max() - x.min(), cause=self)

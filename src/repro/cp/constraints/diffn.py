"""DiffN: pairwise non-overlap of axis-aligned rectangles.

This is the homogeneous-plane non-overlap constraint from the 2-D packing
literature (Section II of the paper classifies such models); the
heterogeneous, shape-polymorphic version used by the actual placer is the
geost kernel in :mod:`repro.geost`.  DiffN here provides (a) a simple
reference semantics the geost kernel is tested against, and (b) a usable
constraint for homogeneous-fabric models and examples.

Filtering: for each ordered pair (i, j), if in one dimension the two
rectangles are forced to overlap, the other dimension must separate them,
which yields bounds tightening ("forbidden region" reasoning).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.cp.engine import Engine, Inconsistent
from repro.cp.events import Event
from repro.cp.propagator import Priority, Propagator
from repro.cp.variable import IntVar


@dataclass(frozen=True)
class Rect:
    """A rectangle with variable origin and fixed size."""

    x: IntVar
    y: IntVar
    w: int
    h: int

    def __post_init__(self) -> None:
        if self.w <= 0 or self.h <= 0:
            raise ValueError("rectangle sides must be positive")


def _must_overlap_1d(a_lo: int, a_hi: int, a_len: int,
                     b_lo: int, b_hi: int, b_len: int) -> bool:
    """True if the two intervals overlap for *every* choice of origins."""
    # Even the rightmost placement of a starts before the leftmost end of b,
    # and vice versa => no separation is possible in this dimension.
    return a_hi < b_lo + b_len and b_hi < a_lo + a_len


class DiffN(Propagator):
    """No two rectangles overlap."""

    priority = Priority.QUADRATIC
    #: one pass over the pairs is not a fixpoint: tightening rect j against
    #: rect i can enable further tightening of an already-visited pair, so
    #: the engine must re-run this propagator when it prunes its own
    #: watched variables (the self-notification re-queue in
    #: ``Engine.fixpoint``)
    idempotent = False

    def __init__(self, rects: Sequence[Rect]) -> None:
        super().__init__("diffn")
        self.rects = list(rects)

    def variables(self) -> Sequence[IntVar]:
        out: List[IntVar] = []
        for r in self.rects:
            out.append(r.x)
            out.append(r.y)
        return out

    def post(self, engine: Engine) -> None:
        for v in self.variables():
            v.watch(self, Event.BOUNDS)
        engine.schedule(self)

    # ------------------------------------------------------------------
    def _separate(self, a: Rect, b: Rect, horizontal: bool) -> None:
        """Force a and b apart along one axis (both orders still possible)."""
        if horizontal:
            ax, bx, aw, bw = a.x, b.x, a.w, b.w
        else:
            ax, bx, aw, bw = a.y, b.y, a.h, b.h
        a_left_possible = ax.min() + aw <= bx.max()
        b_left_possible = bx.min() + bw <= ax.max()
        if a_left_possible and not b_left_possible:
            # a must be left of b
            bx.remove_below(ax.min() + aw, cause=self)
            ax.remove_above(bx.max() - aw, cause=self)
        elif b_left_possible and not a_left_possible:
            ax.remove_below(bx.min() + bw, cause=self)
            bx.remove_above(ax.max() - bw, cause=self)
        elif not a_left_possible and not b_left_possible:
            raise Inconsistent("diffn: rectangles cannot be separated")

    def propagate(self, engine: Engine) -> None:
        rects = self.rects
        n = len(rects)
        for i in range(n):
            for j in range(i + 1, n):
                a, b = rects[i], rects[j]
                x_must = _must_overlap_1d(a.x.min(), a.x.max(), a.w,
                                          b.x.min(), b.x.max(), b.w)
                y_must = _must_overlap_1d(a.y.min(), a.y.max(), a.h,
                                          b.y.min(), b.y.max(), b.h)
                if x_must and y_must:
                    raise Inconsistent("diffn: forced overlap")
                if x_must:
                    self._separate(a, b, horizontal=False)
                if y_must:
                    self._separate(a, b, horizontal=True)

"""``m == max(xs)`` and ``m == min(xs)`` with bounds propagation.

The maximum constraint is the backbone of the paper's objective (Eq. 6):
the placement extent is the maximum over modules of ``x_i + width_i`` and
branch-and-bound minimizes it.
"""

from __future__ import annotations

from typing import Sequence

from repro.cp.engine import Engine, Inconsistent
from repro.cp.events import Event
from repro.cp.propagator import Priority, Propagator
from repro.cp.variable import IntVar


class Maximum(Propagator):
    """``m == max(x_1, ..., x_n)``."""

    priority = Priority.LINEAR

    def __init__(self, m: IntVar, xs: Sequence[IntVar]) -> None:
        super().__init__(f"{m.name}==max(...)")
        if not xs:
            raise ValueError("Maximum needs at least one operand")
        self.m = m
        self.xs = list(xs)

    def variables(self) -> Sequence[IntVar]:
        return [self.m, *self.xs]

    def post(self, engine: Engine) -> None:
        for v in self.variables():
            v.watch(self, Event.BOUNDS)
        engine.schedule(self)

    def propagate(self, engine: Engine) -> None:
        xs = self.xs
        changed = True
        while changed:  # self-updates do not re-wake us; iterate locally
            changed = False
            changed |= self.m.remove_above(max(x.max() for x in xs), cause=self)
            changed |= self.m.remove_below(max(x.min() for x in xs), cause=self)
            m_max = self.m.max()
            for x in xs:
                changed |= x.remove_above(m_max, cause=self)
            # if only one operand can reach m's minimum, it must
            m_min = self.m.min()
            candidates = [x for x in xs if x.max() >= m_min]
            if not candidates:
                raise Inconsistent(f"{self.name}: no operand can reach {m_min}")
            if len(candidates) == 1:
                changed |= candidates[0].remove_below(m_min, cause=self)


class Minimum(Propagator):
    """``m == min(x_1, ..., x_n)``."""

    priority = Priority.LINEAR

    def __init__(self, m: IntVar, xs: Sequence[IntVar]) -> None:
        super().__init__(f"{m.name}==min(...)")
        if not xs:
            raise ValueError("Minimum needs at least one operand")
        self.m = m
        self.xs = list(xs)

    def variables(self) -> Sequence[IntVar]:
        return [self.m, *self.xs]

    def post(self, engine: Engine) -> None:
        for v in self.variables():
            v.watch(self, Event.BOUNDS)
        engine.schedule(self)

    def propagate(self, engine: Engine) -> None:
        xs = self.xs
        changed = True
        while changed:  # mirror of Maximum: iterate to a local fixpoint
            changed = False
            changed |= self.m.remove_below(min(x.min() for x in xs), cause=self)
            changed |= self.m.remove_above(min(x.max() for x in xs), cause=self)
            m_min = self.m.min()
            for x in xs:
                changed |= x.remove_below(m_min, cause=self)
            m_max = self.m.max()
            candidates = [x for x in xs if x.min() <= m_max]
            if not candidates:
                raise Inconsistent(f"{self.name}: no operand can reach {m_max}")
            if len(candidates) == 1:
                changed |= candidates[0].remove_above(m_max, cause=self)

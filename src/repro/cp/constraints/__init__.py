"""Constraint (propagator) library for the CP engine.

Each module implements one family of constraints as
:class:`~repro.cp.propagator.Propagator` subclasses.  The placement model in
:mod:`repro.core` composes these with the geometric kernel from
:mod:`repro.geost`.
"""

from repro.cp.constraints.arithmetic import (
    EqualOffset,
    LessEqualOffset,
    NotEqual,
    NotEqualOffset,
    SumOfTwo,
)
from repro.cp.constraints.linear import LinearEqual, LinearLessEqual
from repro.cp.constraints.element import Element
from repro.cp.constraints.minmax import Maximum, Minimum
from repro.cp.constraints.table import TableConstraint
from repro.cp.constraints.logical import IffLessEqual, IffInSet, BoolOr
from repro.cp.constraints.alldifferent import AllDifferent
from repro.cp.constraints.count import AtLeast, AtMost, Count
from repro.cp.constraints.distance import AbsDifference, MinDistance
from repro.cp.constraints.cumulative import Cumulative, Task
from repro.cp.constraints.diffn import DiffN, Rect

__all__ = [
    "EqualOffset",
    "LessEqualOffset",
    "NotEqual",
    "NotEqualOffset",
    "SumOfTwo",
    "LinearEqual",
    "LinearLessEqual",
    "Element",
    "Maximum",
    "Minimum",
    "TableConstraint",
    "IffLessEqual",
    "IffInSet",
    "BoolOr",
    "AllDifferent",
    "Count",
    "AtMost",
    "AtLeast",
    "AbsDifference",
    "MinDistance",
    "Cumulative",
    "Task",
    "DiffN",
    "Rect",
]

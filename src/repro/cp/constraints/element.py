"""The element constraint ``result == table[index]``.

``table`` is a fixed integer array.  The propagator maintains domain
consistency in both directions: indices whose table entry left the result
domain are pruned, and the result domain is the image of the index domain.
Used by the placement model to tie a module's width/height/area to its
shape-alternative variable.
"""

from __future__ import annotations

from typing import Sequence

from repro.cp.domain import Domain
from repro.cp.engine import Engine, Inconsistent
from repro.cp.propagator import Priority, Propagator
from repro.cp.variable import IntVar


class Element(Propagator):
    """``result == table[index]`` (domain-consistent)."""

    priority = Priority.LINEAR

    def __init__(self, table: Sequence[int], index: IntVar, result: IntVar) -> None:
        super().__init__(f"{result.name}==table[{index.name}]")
        self.table = list(table)
        self.index = index
        self.result = result

    def variables(self) -> Sequence[IntVar]:
        return (self.index, self.result)

    def post(self, engine: Engine) -> None:
        # indices must address the table
        self.index.set_domain(
            self.index.domain.clamp(0, len(self.table) - 1), cause=self
        )
        super().post(engine)

    def propagate(self, engine: Engine) -> None:
        table = self.table
        rdom = self.result.domain
        keep_idx = [i for i in self.index.domain if table[i] in rdom]
        if not keep_idx:
            raise Inconsistent(f"{self.name}: no index maps into result domain")
        self.index.set_domain(Domain(keep_idx), cause=self)
        image = Domain(sorted({table[i] for i in keep_idx}))
        self.result.set_domain(rdom.intersect(image), cause=self)
        if self.index.is_fixed():
            self.deactivate(engine)

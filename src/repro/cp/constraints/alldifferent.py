"""AllDifferent with value pruning plus Hall-interval bounds filtering.

Not strictly needed by the placement model (the geometric kernel subsumes
it), but part of any credible CP kernel and used for symmetry-breaking in
tests and examples.  The bounds filtering is a direct O(n^2) implementation
of Puget-style Hall interval reasoning, deliberately simple so it can be
cross-checked against brute force by the property-based tests.
"""

from __future__ import annotations

from typing import Sequence

from repro.cp.engine import Engine, Inconsistent
from repro.cp.propagator import Priority, Propagator
from repro.cp.variable import IntVar


class AllDifferent(Propagator):
    """All variables take pairwise distinct values."""

    priority = Priority.QUADRATIC

    def __init__(self, xs: Sequence[IntVar]) -> None:
        super().__init__("alldifferent")
        self.xs = list(xs)

    def variables(self) -> Sequence[IntVar]:
        return self.xs

    def propagate(self, engine: Engine) -> None:
        xs = self.xs
        # --- forward checking on fixed variables (iterate to fixpoint) ---
        removed = True
        fixed_seen: set[int] = set()
        while removed:
            removed = False
            for x in xs:
                if x.is_fixed():
                    v = x.value()
                    if v in fixed_seen:
                        continue
                    fixed_seen.add(v)
                    for y in xs:
                        if y is not x and not y.is_fixed() and v in y.domain:
                            y.remove(v, cause=self)
                            removed = True
            # duplicate fixed values => failure
            vals = [x.value() for x in xs if x.is_fixed()]
            if len(vals) != len(set(vals)):
                raise Inconsistent("alldifferent: duplicate fixed values")

        # --- Hall interval bounds filtering ---
        # For every candidate interval [a, b]: if the number of variables
        # whose domain lies inside exceeds the interval size -> fail; if it
        # equals, remove the interval from all other variables' bounds.
        mins = sorted({x.min() for x in xs})
        maxs = sorted({x.max() for x in xs})
        for a in mins:
            for b in maxs:
                if b < a:
                    continue
                size = b - a + 1
                inside = [x for x in xs if x.min() >= a and x.max() <= b]
                if len(inside) > size:
                    raise Inconsistent(
                        f"alldifferent: {len(inside)} vars in interval [{a},{b}]"
                    )
                if len(inside) == size:
                    inside_set = set(map(id, inside))
                    for x in xs:
                        if id(x) in inside_set:
                            continue
                        if a <= x.min() <= b:
                            x.remove_below(b + 1, cause=self)
                        if a <= x.max() <= b:
                            x.remove_above(a - 1, cause=self)
        if all(x.is_fixed() for x in xs):
            self.deactivate(engine)

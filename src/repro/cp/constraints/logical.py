"""Reified and boolean constraints.

Booleans are ordinary 0/1 :class:`IntVar` variables.  The reified forms let
the placement model express conditional restrictions such as "if module i
uses shape s then its x-range shrinks" without dedicated machinery.
"""

from __future__ import annotations

from typing import Sequence

from repro.cp.domain import Domain
from repro.cp.engine import Engine, Inconsistent
from repro.cp.propagator import Priority, Propagator
from repro.cp.variable import IntVar


def _require_bool(b: IntVar) -> None:
    if b.min() < 0 or b.max() > 1:
        raise ValueError(f"{b.name} is not a 0/1 variable")


class IffLessEqual(Propagator):
    """``b == 1  <=>  x <= c``."""

    priority = Priority.UNARY

    def __init__(self, b: IntVar, x: IntVar, c: int) -> None:
        super().__init__(f"{b.name}<=>({x.name}<={c})")
        _require_bool(b)
        self.b, self.x, self.c = b, x, c

    def variables(self) -> Sequence[IntVar]:
        return (self.b, self.x)

    def propagate(self, engine: Engine) -> None:
        b, x, c = self.b, self.x, self.c
        if b.is_fixed():
            if b.value() == 1:
                x.remove_above(c, cause=self)
            else:
                x.remove_below(c + 1, cause=self)
            self.deactivate(engine)
            return
        if x.max() <= c:
            b.fix(1, cause=self)
            self.deactivate(engine)
        elif x.min() > c:
            b.fix(0, cause=self)
            self.deactivate(engine)


class IffInSet(Propagator):
    """``b == 1  <=>  x in values``."""

    priority = Priority.UNARY

    def __init__(self, b: IntVar, x: IntVar, values: Sequence[int]) -> None:
        super().__init__(f"{b.name}<=>({x.name} in set)")
        _require_bool(b)
        self.b, self.x = b, x
        self.values = Domain(values)

    def variables(self) -> Sequence[IntVar]:
        return (self.b, self.x)

    def propagate(self, engine: Engine) -> None:
        b, x = self.b, self.x
        inside = x.domain.intersect(self.values)
        if b.is_fixed():
            if b.value() == 1:
                x.set_domain(inside, cause=self)
            else:
                x.set_domain(x.domain.difference(self.values), cause=self)
            self.deactivate(engine)
            return
        if inside.is_empty():
            b.fix(0, cause=self)
            self.deactivate(engine)
        elif x.domain.is_subset_of(self.values):
            b.fix(1, cause=self)
            self.deactivate(engine)


class BoolOr(Propagator):
    """``b_1 or b_2 or ... or b_n`` must hold (clause)."""

    priority = Priority.LINEAR

    def __init__(self, bs: Sequence[IntVar]) -> None:
        super().__init__("or")
        if not bs:
            raise ValueError("empty clause")
        for b in bs:
            _require_bool(b)
        self.bs = list(bs)

    def variables(self) -> Sequence[IntVar]:
        return self.bs

    def propagate(self, engine: Engine) -> None:
        unfixed = []
        for b in self.bs:
            if b.is_fixed():
                if b.value() == 1:
                    self.deactivate(engine)
                    return
            else:
                unfixed.append(b)
        if not unfixed:
            raise Inconsistent("clause falsified")
        if len(unfixed) == 1:  # unit propagation
            unfixed[0].fix(1, cause=self)
            self.deactivate(engine)

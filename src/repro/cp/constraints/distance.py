"""Distance constraints: ``z == |x - y|`` and ``|x - y| >= d``.

Used by communication-aware placement (wirelength terms between modules
that exchange data) and by spacing rules (e.g. keeping thermally hot
modules apart).
"""

from __future__ import annotations

from typing import Sequence

from repro.cp.engine import Engine, Inconsistent
from repro.cp.events import Event
from repro.cp.propagator import Priority, Propagator
from repro.cp.variable import IntVar


class AbsDifference(Propagator):
    """``z == |x - y|`` with bounds propagation."""

    priority = Priority.UNARY

    def __init__(self, z: IntVar, x: IntVar, y: IntVar) -> None:
        super().__init__(f"{z.name}==|{x.name}-{y.name}|")
        self.z, self.x, self.y = z, x, y

    def variables(self) -> Sequence[IntVar]:
        return (self.z, self.x, self.y)

    def post(self, engine: Engine) -> None:
        for v in self.variables():
            v.watch(self, Event.BOUNDS)
        engine.schedule(self)

    def propagate(self, engine: Engine) -> None:
        z, x, y = self.z, self.x, self.y
        changed = True
        while changed:
            changed = False
            d_max = max(x.max() - y.min(), y.max() - x.min())
            changed |= z.remove_above(max(0, d_max), cause=self)
            # minimal possible |x - y|: 0 if the intervals overlap
            if x.min() > y.max():
                d_min = x.min() - y.max()
            elif y.min() > x.max():
                d_min = y.min() - x.max()
            else:
                d_min = 0
            changed |= z.remove_below(d_min, cause=self)
            # |x - y| <= z_max  =>  x in [y_min - z_max, y_max + z_max]
            z_hi = z.max()
            changed |= x.remove_below(y.min() - z_hi, cause=self)
            changed |= x.remove_above(y.max() + z_hi, cause=self)
            changed |= y.remove_below(x.min() - z_hi, cause=self)
            changed |= y.remove_above(x.max() + z_hi, cause=self)
            # |x - y| >= z_min: only prunable once one side is localized
            z_lo = z.min()
            if z_lo > 0:
                if y.max() - x.max() < z_lo and x.min() - y.min() < z_lo:
                    # both orders still open: no bounds pruning possible
                    pass
                if x.is_fixed():
                    v = x.value()
                    lo, hi = v - z_lo + 1, v + z_lo - 1
                    dom = y.domain
                    new = dom.remove_above(lo - 1).union(dom.remove_below(hi + 1))
                    changed |= y.set_domain(dom.intersect(new), cause=self)
                elif y.is_fixed():
                    v = y.value()
                    lo, hi = v - z_lo + 1, v + z_lo - 1
                    dom = x.domain
                    new = dom.remove_above(lo - 1).union(dom.remove_below(hi + 1))
                    changed |= x.set_domain(dom.intersect(new), cause=self)


class MinDistance(Propagator):
    """``|x - y| >= d`` (hard spacing rule)."""

    priority = Priority.UNARY

    def __init__(self, x: IntVar, y: IntVar, d: int) -> None:
        super().__init__(f"|{x.name}-{y.name}|>={d}")
        if d < 0:
            raise ValueError("distance must be non-negative")
        self.x, self.y, self.d = x, y, d

    def variables(self) -> Sequence[IntVar]:
        return (self.x, self.y)

    def propagate(self, engine: Engine) -> None:
        if self.d == 0:
            self.deactivate(engine)
            return
        x, y, d = self.x, self.y, self.d
        for a, b in ((x, y), (y, x)):
            if a.is_fixed():
                v = a.value()
                dom = b.domain
                keep = dom.remove_above(v - d).union(dom.remove_below(v + d))
                b.set_domain(dom.intersect(keep), cause=self)
        if x.is_fixed() and y.is_fixed():
            if abs(x.value() - y.value()) < d:
                raise Inconsistent(f"{self.name} violated")
            self.deactivate(engine)

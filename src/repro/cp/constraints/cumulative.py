"""Cumulative resource constraint with time-table filtering.

In the placement model this serves as a *redundant* constraint: projecting
2-D module footprints onto the x axis gives tasks (start = x, duration =
width, demand = height) that must fit within the region height.  Projection
arguments famously strengthen packing propagation (Beldiceanu et al.).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.cp.engine import Engine, Inconsistent
from repro.cp.events import Event
from repro.cp.propagator import Priority, Propagator
from repro.cp.variable import IntVar


@dataclass(frozen=True)
class Task:
    """A task with variable start, fixed duration and demand."""

    start: IntVar
    duration: int
    demand: int

    def __post_init__(self) -> None:
        if self.duration < 0 or self.demand < 0:
            raise ValueError("duration and demand must be non-negative")


#: A maximal constant-height stretch of the compulsory profile:
#: (segment start, segment end (exclusive), height).
Segment = Tuple[int, int, int]


class Cumulative(Propagator):
    """``sum of demands of tasks overlapping any time point <= capacity``."""

    priority = Priority.QUADRATIC

    def __init__(self, tasks: Sequence[Task], capacity: int) -> None:
        super().__init__("cumulative")
        if capacity < 0:
            raise ValueError("capacity must be non-negative")
        self.tasks = [t for t in tasks if t.duration > 0 and t.demand > 0]
        self.capacity = capacity
        for t in self.tasks:
            if t.demand > capacity:
                raise ValueError(f"task demand {t.demand} exceeds capacity {capacity}")

    def variables(self) -> Sequence[IntVar]:
        return [t.start for t in self.tasks]

    def post(self, engine: Engine) -> None:
        for v in self.variables():
            v.watch(self, Event.BOUNDS)
        engine.schedule(self)

    # ------------------------------------------------------------------
    @staticmethod
    def _compulsory_part(t: Task) -> Tuple[int, int]:
        """[latest start, earliest end) — empty if start < end fails."""
        return t.start.max(), t.start.min() + t.duration

    def _profile(self, exclude: Task | None = None) -> List[Segment]:
        """Compulsory-part profile, optionally excluding one task."""
        events: dict[int, int] = {}
        for t in self.tasks:
            if t is exclude:
                continue
            ls, ee = self._compulsory_part(t)
            if ls < ee:
                events[ls] = events.get(ls, 0) + t.demand
                events[ee] = events.get(ee, 0) - t.demand
        times = sorted(events)
        segments: List[Segment] = []
        h = 0
        for i, tp in enumerate(times):
            h += events[tp]
            end = times[i + 1] if i + 1 < len(times) else tp  # last delta ends profile
            if h > 0 and end > tp:
                segments.append((tp, end, h))
        return segments

    def propagate(self, engine: Engine) -> None:
        # overall overflow check on the full profile
        for _, _, h in self._profile():
            if h > self.capacity:
                raise Inconsistent("cumulative: compulsory profile overflows capacity")

        for t in self.tasks:
            free = self.capacity - t.demand
            segments = [s for s in self._profile(exclude=t) if s[2] > free]
            if not segments:
                continue
            # push earliest start right past conflicting segments
            moved = True
            while moved:
                moved = False
                est = t.start.min()
                for s, e, _ in segments:
                    if est < e and est + t.duration > s:
                        if t.start.remove_below(e, cause=self):
                            moved = True
                        break
            # push latest start left before conflicting segments
            moved = True
            while moved:
                moved = False
                lst = t.start.max()
                for s, e, _ in reversed(segments):
                    if lst < e and lst + t.duration > s:
                        if t.start.remove_above(s - t.duration, cause=self):
                            moved = True
                        break

"""Propagator base class and scheduling priorities.

A propagator implements a filtering algorithm for one constraint.  The
engine calls :meth:`Propagator.propagate` until a fixpoint is reached;
propagators signal failure by raising
:class:`~repro.cp.engine.Inconsistent`.
"""

from __future__ import annotations

from enum import IntEnum
from typing import TYPE_CHECKING, Sequence

from repro.cp.events import Event

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cp.engine import Engine
    from repro.cp.variable import IntVar


class Priority(IntEnum):
    """Cheapest propagators run first; the queue is priority-ordered."""

    UNARY = 0       # O(1) per call (bounds arithmetic on two vars)
    LINEAR = 1      # O(n) in arity
    QUADRATIC = 2   # pairwise algorithms
    EXPENSIVE = 3   # global geometric kernels, table GAC, ...


class Propagator:
    """Base class for constraint filtering algorithms.

    Subclasses set :attr:`priority`, subscribe to their variables in
    :meth:`post`, and implement :meth:`propagate`.
    """

    priority: Priority = Priority.LINEAR

    #: Declares that one ``propagate`` run always reaches this propagator's
    #: own fixpoint, even w.r.t. domain changes it makes itself mid-run
    #: (e.g. kernels that drain an internal dirty set).  The engine skips
    #: the self-notification re-queue for idempotent propagators; for the
    #: default (False) a propagator that modifies its own variables
    #: mid-``propagate`` is queued again once the run completes, closing
    #: the lost-wake-up window created by clearing ``_queued`` before the
    #: run.  Only set True after verifying the single-run-fixpoint claim.
    idempotent: bool = False

    def __init__(self, name: str = "") -> None:
        self.name = name or type(self).__name__
        self._queued = False  # engine bookkeeping: already in the queue?
        #: engine bookkeeping: modified own watched vars mid-propagate?
        self._self_notified = False
        self._active = True

    # ------------------------------------------------------------------
    def post(self, engine: "Engine") -> None:
        """Subscribe to variables and run the initial propagation.

        Default implementation subscribes to :meth:`variables` with
        :attr:`Event.ANY` and schedules an initial run.
        """
        for v in self.variables():
            v.watch(self, Event.ANY)
        engine.schedule(self)

    def variables(self) -> Sequence["IntVar"]:
        """The variables this constraint ranges over (override)."""
        return ()

    def propagate(self, engine: "Engine") -> None:
        """Filter domains; raise ``Inconsistent`` on wipe-out (override)."""
        raise NotImplementedError

    def on_event(self, var: "IntVar", event: Event) -> bool:
        """Return True if the propagator should be scheduled for ``event``.

        Hook for propagators that want finer-grained wakeups than the event
        mask alone provides (e.g. watch only their own entailment state).
        """
        return True

    def deactivate(self, engine: "Engine") -> None:
        """Entailed: stop waking up until backtracking past this point."""
        if self._active:
            self._active = False
            engine.trail.push(self._reactivate)

    def _reactivate(self) -> None:
        self._active = True

    @property
    def active(self) -> bool:
        return self._active

    def __repr__(self) -> str:
        return f"<{self.name}>"

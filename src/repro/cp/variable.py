"""Finite-domain integer variables.

An :class:`IntVar` owns an immutable :class:`~repro.cp.domain.Domain` and a
subscriber list of ``(propagator, event_mask)`` pairs.  All mutation goes
through the owning :class:`~repro.cp.engine.Engine`, which handles trailing,
event classification, and propagator scheduling; the methods here are thin
conveniences that delegate to it.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, List, Optional, Tuple

from repro.cp.domain import Domain
from repro.cp.events import Event

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cp.engine import Engine
    from repro.cp.propagator import Propagator


class IntVar:
    """An integer decision variable."""

    __slots__ = ("engine", "name", "domain", "watchers", "index")

    def __init__(self, engine: "Engine", domain: Domain, name: str = "") -> None:
        self.engine = engine
        self.domain = domain
        self.name = name or f"v{id(self) & 0xFFFF:x}"
        self.watchers: List[Tuple["Propagator", Event]] = []
        self.index = engine.register_variable(self)

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    def min(self) -> int:
        return self.domain.min()

    def max(self) -> int:
        return self.domain.max()

    def size(self) -> int:
        return len(self.domain)

    def is_fixed(self) -> bool:
        return self.domain.is_singleton()

    def value(self) -> int:
        return self.domain.value()

    def __contains__(self, v: int) -> bool:
        return v in self.domain

    def values(self) -> Iterable[int]:
        return iter(self.domain)

    def __repr__(self) -> str:
        return f"IntVar({self.name}={self.domain!r})"

    # ------------------------------------------------------------------
    # Mutation (delegates to engine)
    # ------------------------------------------------------------------
    def watch(self, propagator: "Propagator", events: Event = Event.ANY) -> None:
        """Subscribe ``propagator`` to modifications of this variable."""
        self.watchers.append((propagator, events))

    def set_domain(self, new: Domain, cause: Optional["Propagator"] = None) -> bool:
        """Replace the domain with ``new`` (must be a subset); returns True if changed."""
        return self.engine.update_domain(self, new, cause)

    def fix(self, v: int, cause: Optional["Propagator"] = None) -> bool:
        return self.set_domain(self.domain.intersect(Domain.singleton(v)), cause)

    def remove(self, v: int, cause: Optional["Propagator"] = None) -> bool:
        return self.set_domain(self.domain.remove(v), cause)

    def remove_below(self, lo: int, cause: Optional["Propagator"] = None) -> bool:
        return self.set_domain(self.domain.remove_below(lo), cause)

    def remove_above(self, hi: int, cause: Optional["Propagator"] = None) -> bool:
        return self.set_domain(self.domain.remove_above(hi), cause)

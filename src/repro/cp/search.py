"""Depth-first search with trailing backtracking.

The search is iterative (explicit frame stack, no recursion) so instance
size never hits the interpreter recursion limit.  Each decision pushes one
trail level; failed values are undone by popping it.  A ``node_hook`` runs
inside every decision's propagation attempt — branch-and-bound uses it to
impose the current objective bound, which survives backtracking because it
is re-imposed at every node rather than posted as a trailed constraint.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Sequence

from repro.cp.branching import (
    ValueSelector,
    VarSelector,
    input_order,
    min_value,
)
from repro.cp.engine import Engine, Inconsistent
from repro.cp.stats import SearchStats
from repro.cp.variable import IntVar
from repro.obs.trace import NODE_FAILED, NODE_OPENED, SOLUTION

Solution = Dict[str, int]


@dataclass
class SearchLimit:
    """Resource limits; ``None`` means unlimited."""

    time_seconds: Optional[float] = None
    nodes: Optional[int] = None
    solutions: Optional[int] = None
    failures: Optional[int] = None


class _Frame:
    __slots__ = ("var", "values")

    def __init__(self, var: IntVar, values: Iterator[int]) -> None:
        self.var = var
        self.values = values


class DepthFirstSearch:
    """Enumerate solutions over ``decision_vars`` by DFS.

    Parameters
    ----------
    engine:
        The propagation engine (root propagation must already have run).
    decision_vars:
        The variables the search must fix; auxiliary variables may remain
        unfixed in a solution if propagation leaves them so.
    var_select / val_select:
        Branching heuristics (see :mod:`repro.cp.branching`).
    limit:
        Optional resource limits.
    node_hook:
        Called inside each decision attempt, after the value is fixed and
        before the fixpoint; may raise
        :class:`~repro.cp.engine.Inconsistent`.
    """

    def __init__(
        self,
        engine: Engine,
        decision_vars: Sequence[IntVar],
        var_select: VarSelector = input_order,
        val_select: ValueSelector = min_value,
        limit: Optional[SearchLimit] = None,
        node_hook: Optional[Callable[[Engine], None]] = None,
    ) -> None:
        self.engine = engine
        self.decision_vars = list(decision_vars)
        self.var_select = var_select
        self.val_select = val_select
        self.limit = limit or SearchLimit()
        self.node_hook = node_hook
        self.stats = SearchStats()
        self._deadline: Optional[float] = None

    # ------------------------------------------------------------------
    def _limits_exceeded(self) -> Optional[str]:
        lim, st = self.limit, self.stats
        if self._deadline is not None and time.monotonic() > self._deadline:
            return "time"
        if lim.nodes is not None and st.nodes >= lim.nodes:
            return "nodes"
        if lim.solutions is not None and st.solutions >= lim.solutions:
            return "solutions"
        if lim.failures is not None and st.backtracks >= lim.failures:
            return "failures"
        return None

    def _snapshot(self) -> Solution:
        return {
            v.name: v.value() for v in self.decision_vars if v.is_fixed()
        }

    def _try_next(self, frame: _Frame) -> bool:
        """Try values of ``frame`` until one survives propagation."""
        engine = self.engine
        tracer = engine.tracer
        for value in frame.values:
            if value not in frame.var.domain:
                continue  # pruned since the iterator was built
            engine.push_level()
            self.stats.nodes += 1
            if tracer is not None:
                tracer.emit(
                    NODE_OPENED,
                    var=frame.var.name,
                    value=value,
                    depth=engine.depth(),
                )
            try:
                frame.var.fix(value)
                if self.node_hook is not None:
                    self.node_hook(engine)
                engine.fixpoint()
                return True
            except Inconsistent:
                engine.pop_level()
                self.stats.backtracks += 1
                if tracer is not None:
                    tracer.emit(
                        NODE_FAILED,
                        var=frame.var.name,
                        value=value,
                        depth=engine.depth(),
                    )
                reason = self._limits_exceeded()
                if reason is not None:
                    raise _SearchStopped(reason)
        return False

    def solutions(self) -> Iterator[Solution]:
        """Generate solutions; restores the engine state on exhaustion."""
        engine = self.engine
        start = time.monotonic()
        if self.limit.time_seconds is not None:
            self._deadline = start + self.limit.time_seconds
        frames: List[_Frame] = []
        base_depth = engine.depth()
        try:
            # Apply the node hook at the root too (bounds from prior solutions).
            if self.node_hook is not None:
                self.node_hook(engine)
                engine.fixpoint()
            while True:
                reason = self._limits_exceeded()
                if reason is not None:
                    raise _SearchStopped(reason)
                var = self.var_select(self.decision_vars)
                if var is None:
                    self.stats.solutions += 1
                    self.stats.max_depth = max(self.stats.max_depth, len(frames))
                    if engine.tracer is not None:
                        engine.tracer.emit(
                            SOLUTION,
                            depth=len(frames),
                            count=self.stats.solutions,
                        )
                    yield self._snapshot()
                    if not self._backtrack(frames):
                        self.stats.stop_reason = "exhausted"
                        return
                    continue
                frame = _Frame(var, iter(self.val_select(var)))
                if self._try_next(frame):
                    frames.append(frame)
                elif not self._backtrack(frames):
                    self.stats.stop_reason = "exhausted"
                    return
        except _SearchStopped as stop:
            self.stats.stop_reason = stop.reason
            return
        except Inconsistent:
            # root-level failure (e.g. node hook wiped a domain at the root)
            self.stats.stop_reason = "exhausted"
            return
        finally:
            engine.trail.pop_to(base_depth)
            self.stats.elapsed += time.monotonic() - start
            self._deadline = None

    def _backtrack(self, frames: List[_Frame]) -> bool:
        engine = self.engine
        while frames:
            engine.pop_level()
            self.stats.backtracks += 1
            if self._try_next(frames[-1]):
                return True
            frames.pop()
        return False

    # ------------------------------------------------------------------
    def first_solution(self) -> Optional[Solution]:
        """Convenience: the first solution or None."""
        for sol in self.solutions():
            return sol
        return None

    def all_solutions(self) -> List[Solution]:
        return list(self.solutions())

    def count_solutions(self) -> int:
        return sum(1 for _ in self.solutions())


class _SearchStopped(Exception):
    def __init__(self, reason: str) -> None:
        super().__init__(reason)
        self.reason = reason

"""Trailing: undo log for chronological backtracking.

The engine records undo closures as search decisions mutate state.  A level
is opened per search node; backtracking pops all entries down to the saved
marker and replays them in reverse order.  Domains are immutable, so a
variable's undo entry simply restores its previous :class:`~repro.cp.domain.Domain`
reference; global constraints (e.g. the placement kernel) push their own
closures to restore occupancy grids and anchor masks.
"""

from __future__ import annotations

from typing import Callable, List


class Revision:
    """Monotonic stamp for trail-aware cache invalidation.

    Global constraints that cache derived state (anchor counts, forbidden
    boxes) key each cache entry on the stamp current at computation time.
    The owner calls :meth:`bump` on every tracked mutation *and from the
    mutation's trail undo closure*, so the stamp never repeats a value:
    a cache entry is valid iff its stamp equals :attr:`current`, and both
    forward mutations and backtracking invalidate it.  This deliberately
    sidesteps the ABA problem of comparing restored state for equality —
    equality of stamps proves nothing ever changed.
    """

    __slots__ = ("current",)

    def __init__(self) -> None:
        self.current = 0

    def bump(self) -> int:
        """Invalidate all caches keyed on the previous stamp."""
        self.current += 1
        return self.current


class Trail:
    """A stack of undo callbacks with level markers."""

    __slots__ = ("_entries", "_levels")

    def __init__(self) -> None:
        self._entries: List[Callable[[], None]] = []
        self._levels: List[int] = []

    # ------------------------------------------------------------------
    def push(self, undo: Callable[[], None]) -> None:
        """Record an undo action for the current level."""
        self._entries.append(undo)

    def push_level(self) -> int:
        """Open a new backtracking level; returns its index."""
        self._levels.append(len(self._entries))
        return len(self._levels) - 1

    def pop_level(self) -> None:
        """Undo everything recorded since the last :meth:`push_level`."""
        if not self._levels:
            raise RuntimeError("pop_level on empty level stack")
        marker = self._levels.pop()
        entries = self._entries
        while len(entries) > marker:
            entries.pop()()

    def pop_to(self, level: int) -> None:
        """Pop levels until ``depth() == level``."""
        while len(self._levels) > level:
            self.pop_level()

    def depth(self) -> int:
        return len(self._levels)

    def size(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        self._entries.clear()
        self._levels.clear()

"""Branch-and-bound minimization.

The paper (Sections IV, V) computes *optimal* placements by solving the
constraint model as a minimization problem.  This module implements the
standard CP branch-and-bound: depth-first search, and whenever a solution
with objective value ``z`` is found the remaining search is constrained to
``objective <= z - 1``.  The bound is enforced through the search's node
hook so it survives backtracking, and the search is *anytime*: interrupting
it at a time limit returns the best solution found so far, which is how the
Table I experiments run within a configurable budget.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from repro.cp.branching import ValueSelector, VarSelector, input_order, min_value
from repro.cp.engine import Engine
from repro.cp.search import DepthFirstSearch, SearchLimit, Solution
from repro.cp.stats import SearchStats
from repro.cp.variable import IntVar
from repro.obs.trace import INCUMBENT


@dataclass
class Objective:
    """Minimize ``var`` (use :meth:`maximize` for maximization)."""

    var: IntVar
    #: +1 for minimization, -1 for maximization (internally always minimizes)
    sense: int = 1

    @staticmethod
    def minimize(var: IntVar) -> "Objective":
        return Objective(var, 1)

    @staticmethod
    def maximize(var: IntVar) -> "Objective":
        return Objective(var, -1)


@dataclass
class BnBResult:
    """Outcome of a branch-and-bound run."""

    #: best solution found (None if infeasible within the budget)
    best: Optional[Solution]
    #: objective value of :attr:`best` in the user's sense
    objective: Optional[int]
    #: True iff the search space was exhausted => the answer is optimal
    proved_optimal: bool
    stats: SearchStats = field(default_factory=SearchStats)
    #: (elapsed seconds, objective) for each improving solution
    trajectory: List[Tuple[float, int]] = field(default_factory=list)
    #: search nodes opened when the first incumbent was found (None if the
    #: run never found one); a warm-started solve reports 0 through the
    #: placer layer because its incumbent exists before search begins
    first_incumbent_nodes: Optional[int] = None


class BranchAndBound:
    """Minimize an objective by DFS with solution-improving bounds."""

    def __init__(
        self,
        engine: Engine,
        objective: Objective,
        decision_vars: Sequence[IntVar],
        var_select: VarSelector = input_order,
        val_select: ValueSelector = min_value,
        limit: Optional[SearchLimit] = None,
        on_improve: Optional[Callable[[Solution, int], None]] = None,
    ) -> None:
        self.engine = engine
        self.objective = objective
        self.decision_vars = list(decision_vars)
        if objective.var not in self.decision_vars:
            # the objective must end up fixed in every solution
            self.decision_vars.append(objective.var)
        self.var_select = var_select
        self.val_select = val_select
        self.limit = limit
        self.on_improve = on_improve
        self._best_bound: Optional[int] = None

    # ------------------------------------------------------------------
    def _node_hook(self, engine: Engine) -> None:
        if self._best_bound is not None:
            if self.objective.sense > 0:
                self.objective.var.remove_above(self._best_bound - 1)
            else:
                self.objective.var.remove_below(self._best_bound + 1)

    def run(self) -> BnBResult:
        search = DepthFirstSearch(
            self.engine,
            self.decision_vars,
            var_select=self.var_select,
            val_select=self.val_select,
            limit=self.limit,
            node_hook=self._node_hook,
        )
        best: Optional[Solution] = None
        best_value: Optional[int] = None
        trajectory: List[Tuple[float, int]] = []
        first_incumbent_nodes: Optional[int] = None
        start = time.monotonic()
        for sol in search.solutions():
            value = self.objective.var.value()
            if self._best_bound is None or (
                value < self._best_bound
                if self.objective.sense > 0
                else value > self._best_bound
            ):
                self._best_bound = value
                best, best_value = sol, value
                if first_incumbent_nodes is None:
                    first_incumbent_nodes = search.stats.nodes
                trajectory.append((time.monotonic() - start, value))
                if self.engine.tracer is not None:
                    self.engine.tracer.emit(
                        INCUMBENT,
                        objective=value,
                        nodes=search.stats.nodes,
                    )
                if self.on_improve is not None:
                    self.on_improve(sol, value)
        return BnBResult(
            best=best,
            objective=best_value,
            proved_optimal=search.stats.stop_reason == "exhausted",
            stats=search.stats,
            trajectory=trajectory,
            first_incumbent_nodes=first_incumbent_nodes,
        )

"""Run statistics for the engine and search.

Kept as plain dataclasses so they can be summed across runs and rendered in
benchmark reports.  Per the HPC guides, measurement comes before tuning:
these counters are the profiling hooks for the solver.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class EngineStats:
    """Counters maintained by :class:`repro.cp.engine.Engine`."""

    propagations: int = 0
    domain_updates: int = 0
    failures: int = 0

    def reset(self) -> None:
        self.propagations = 0
        self.domain_updates = 0
        self.failures = 0

    def __add__(self, other: "EngineStats") -> "EngineStats":
        return EngineStats(
            self.propagations + other.propagations,
            self.domain_updates + other.domain_updates,
            self.failures + other.failures,
        )


@dataclass
class SearchStats:
    """Counters maintained by the search algorithms."""

    nodes: int = 0
    backtracks: int = 0
    solutions: int = 0
    max_depth: int = 0
    #: wall-clock seconds spent inside the search loop
    elapsed: float = 0.0
    #: why the search stopped: "exhausted", "limit", or "" while running
    stop_reason: str = ""

    def __add__(self, other: "SearchStats") -> "SearchStats":
        return SearchStats(
            self.nodes + other.nodes,
            self.backtracks + other.backtracks,
            self.solutions + other.solutions,
            max(self.max_depth, other.max_depth),
            self.elapsed + other.elapsed,
            self.stop_reason or other.stop_reason,
        )


@dataclass
class SolveStats:
    """Combined engine + search statistics for one solver run."""

    engine: EngineStats = field(default_factory=EngineStats)
    search: SearchStats = field(default_factory=SearchStats)

    def summary(self) -> str:
        e, s = self.engine, self.search
        return (
            f"nodes={s.nodes} backtracks={s.backtracks} solutions={s.solutions} "
            f"propagations={e.propagations} failures={e.failures} "
            f"elapsed={s.elapsed:.3f}s"
        )

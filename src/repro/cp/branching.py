"""Variable- and value-selection heuristics for the search.

A *brancher* turns the current engine state into a decision: it picks an
unfixed variable and a value ordering for it.  The placement model supplies
its own domain-specific brancher (bottom-left anchor ordering); the generic
heuristics here cover the classic CP repertoire and the test suite.
"""

from __future__ import annotations

import random
from typing import Callable, Iterable, List, Optional, Sequence

from repro.cp.variable import IntVar

#: picks the next variable to branch on, or None when all are fixed
VarSelector = Callable[[Sequence[IntVar]], Optional[IntVar]]
#: yields the values of a variable in trial order
ValueSelector = Callable[[IntVar], Iterable[int]]


# ----------------------------------------------------------------------
# Variable selection
# ----------------------------------------------------------------------
def input_order(variables: Sequence[IntVar]) -> Optional[IntVar]:
    """First unfixed variable in declaration order."""
    for v in variables:
        if not v.is_fixed():
            return v
    return None


def smallest_domain(variables: Sequence[IntVar]) -> Optional[IntVar]:
    """Fail-first: the unfixed variable with the fewest remaining values.

    Ties break on the position in ``variables`` — an explicit part of the
    key, never left to container iteration order, so searches replay
    identically across Python versions and variable-registry layouts.
    """
    best: Optional[IntVar] = None
    best_key: Optional[tuple] = None
    for idx, v in enumerate(variables):
        if v.is_fixed():
            continue
        key = (v.size(), idx)
        if best_key is None or key < best_key:
            best, best_key = v, key
    return best


def largest_domain(variables: Sequence[IntVar]) -> Optional[IntVar]:
    """The unfixed variable with the most remaining values."""
    best: Optional[IntVar] = None
    best_size = -1
    for v in variables:
        if not v.is_fixed() and v.size() > best_size:
            best, best_size = v, v.size()
    return best


def smallest_min(variables: Sequence[IntVar]) -> Optional[IntVar]:
    """The unfixed variable whose minimum is smallest (packing-friendly)."""
    best: Optional[IntVar] = None
    for v in variables:
        if v.is_fixed():
            continue
        if best is None or v.min() < best.min():
            best = v
    return best


def random_selector(seed: int) -> VarSelector:
    """A reproducible random variable selector."""
    rng = random.Random(seed)

    def pick(variables: Sequence[IntVar]) -> Optional[IntVar]:
        unfixed = [v for v in variables if not v.is_fixed()]
        return rng.choice(unfixed) if unfixed else None

    return pick


# ----------------------------------------------------------------------
# Value selection
# ----------------------------------------------------------------------
def min_value(v: IntVar) -> Iterable[int]:
    """Ascending order — the bottom-left rule along one axis."""
    return v.domain

def max_value(v: IntVar) -> Iterable[int]:
    """Descending value order (top-right packing bias)."""
    return reversed(list(v.domain))


def median_value(v: IntVar) -> Iterable[int]:
    """Middle-out order (useful for centering-style placements)."""
    vals: List[int] = list(v.domain)
    mid = len(vals) // 2
    order = [vals[mid]]
    for d in range(1, len(vals)):
        for idx in (mid - d, mid + d):
            if 0 <= idx < len(vals):
                order.append(vals[idx])
    return order


def random_value(seed: int) -> ValueSelector:
    """A reproducible random value order."""
    rng = random.Random(seed)

    def pick(v: IntVar) -> Iterable[int]:
        vals = list(v.domain)
        rng.shuffle(vals)
        return vals

    return pick

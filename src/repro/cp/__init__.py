"""Finite-domain constraint programming substrate.

This subpackage is a self-contained CP solver built for the reproduction of
the RAW 2011 module-placement paper.  The paper solves FPGA module placement
with a constraint solver (SICStus + the geost kernel); since no external CP
framework is available in this environment, we implement the required
machinery from scratch:

* bitset-backed finite domains (:mod:`repro.cp.domain`),
* trailed backtracking state (:mod:`repro.cp.trail`),
* integer variables with modification events (:mod:`repro.cp.variable`),
* a priority propagation queue (:mod:`repro.cp.propagator`),
* a library of arithmetic / logical / global constraints
  (:mod:`repro.cp.constraints`),
* depth-first search with pluggable branching (:mod:`repro.cp.search`,
  :mod:`repro.cp.branching`),
* branch-and-bound minimization (:mod:`repro.cp.bnb`), and
* a high-level facade (:mod:`repro.cp.solver`).

The geometric placement constraint lives in :mod:`repro.geost` and registers
itself as an ordinary propagator of this engine.
"""

from repro.cp.domain import Domain, EMPTY_DOMAIN
from repro.cp.variable import IntVar
from repro.cp.engine import Engine, Inconsistent
from repro.cp.model import Model
from repro.cp.propagator import Propagator, Priority
from repro.cp.search import DepthFirstSearch, SearchLimit, SearchStats
from repro.cp.bnb import BranchAndBound, Objective
from repro.cp.solver import Solver, SolveResult, Status

__all__ = [
    "Domain",
    "EMPTY_DOMAIN",
    "IntVar",
    "Engine",
    "Inconsistent",
    "Model",
    "Propagator",
    "Priority",
    "DepthFirstSearch",
    "SearchLimit",
    "SearchStats",
    "BranchAndBound",
    "Objective",
    "Solver",
    "SolveResult",
    "Status",
]

"""Propagation engine: variables, trail, and the fixpoint loop.

The engine is the mutable heart of the solver.  It owns

* the registered variables,
* the :class:`~repro.cp.trail.Trail` used for chronological backtracking,
* a priority-bucketed propagation queue,
* run statistics, and
* the (optional) observability hooks: a structured tracer and a
  per-propagator profile collector (:mod:`repro.obs`).

Domain updates flow through :meth:`Engine.update_domain`, which trails the
previous domain, classifies the modification event, and schedules the
subscribed propagators.  :meth:`Engine.fixpoint` drains the queue in
priority order until quiescence or failure.

Instrumentation is zero-overhead when disabled: the un-instrumented path
through :meth:`fixpoint` and :meth:`update_domain` pays exactly one local
``is None`` check per propagation / domain update, and :class:`NullTracer`
is normalized to *no tracer* at attach time.
"""

from __future__ import annotations

from collections import deque
from time import perf_counter
from typing import Deque, Dict, List, Optional

from repro.cp.domain import Domain
from repro.cp.events import Event, classify
from repro.cp.propagator import Priority, Propagator
from repro.cp.stats import EngineStats
from repro.cp.trail import Trail
from repro.cp.variable import IntVar
from repro.obs.profile import PropagatorProfile
from repro.obs.trace import (
    DOMAIN_UPDATE,
    ENGINE_FAILURE,
    PROPAGATE,
    Tracer,
)


class Inconsistent(Exception):
    """Raised when propagation wipes out a domain (the node fails)."""


_NUM_PRIORITIES = len(Priority)


class Engine:
    """Propagation engine with trailed backtracking."""

    def __init__(
        self,
        tracer: Optional[Tracer] = None,
        profile: bool = False,
    ) -> None:
        self.trail = Trail()
        self.variables: List[IntVar] = []
        self.propagators: List[Propagator] = []
        self._queues: List[Deque[Propagator]] = [deque() for _ in range(_NUM_PRIORITIES)]
        self.stats = EngineStats()
        #: normalized tracer: ``None`` whenever tracing is off
        self.tracer: Optional[Tracer] = None
        #: per-propagator accounting; ``None`` unless profiling is enabled
        self.prop_stats: Optional[Dict[str, PropagatorProfile]] = None
        if tracer is not None:
            self.attach_tracer(tracer)
        if profile:
            self.enable_profiling()

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def attach_tracer(self, tracer: Optional[Tracer]) -> None:
        """Install ``tracer``; a disabled tracer (NullTracer) means off."""
        self.tracer = tracer if tracer is not None and tracer.enabled else None

    def enable_profiling(self) -> None:
        """Start per-propagator wall-time / prune / failure accounting."""
        if self.prop_stats is None:
            self.prop_stats = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def register_variable(self, var: IntVar) -> int:
        self.variables.append(var)
        return len(self.variables) - 1

    def new_var(self, lo: int, hi: int, name: str = "") -> IntVar:
        """Create a variable with domain ``[lo, hi]``."""
        return IntVar(self, Domain.range(lo, hi), name)

    def new_var_from(self, domain: Domain, name: str = "") -> IntVar:
        if domain.is_empty():
            raise ValueError("cannot create a variable with an empty domain")
        return IntVar(self, domain, name)

    def post(self, propagator: Propagator) -> Propagator:
        """Register a constraint's propagator and run its initial filtering."""
        self.propagators.append(propagator)
        propagator.post(self)
        self.fixpoint()
        return propagator

    # ------------------------------------------------------------------
    # Domain updates
    # ------------------------------------------------------------------
    def update_domain(
        self, var: IntVar, new: Domain, cause: Optional[Propagator] = None
    ) -> bool:
        """Shrink ``var`` to ``new``; trail, classify, schedule. True if changed."""
        old = var.domain
        if new.mask == old.mask and (new.mask == 0 or new.offset == old.offset):
            return False
        if new.is_empty():
            self.stats.failures += 1
            if self.tracer is not None:
                self.tracer.emit(
                    ENGINE_FAILURE,
                    var=var.name,
                    cause=cause.name if cause is not None else None,
                )
            raise Inconsistent(f"{var.name}: domain wiped out")
        if not new.is_subset_of(old):
            raise ValueError(
                f"update_domain must shrink: {new!r} is not a subset of {old!r}"
            )
        event = classify(old.min(), old.max(), len(old), new.min(), new.max(), len(new))
        var.domain = new
        self.trail.push(lambda: _restore(var, old))
        self.stats.domain_updates += 1
        tr = self.tracer
        if tr is not None and tr.fine:
            tr.emit(
                DOMAIN_UPDATE,
                var=var.name,
                size=len(new),
                cause=cause.name if cause is not None else None,
            )
        for prop, mask in var.watchers:
            if not prop.active or not (event & mask):
                continue
            if prop is cause:
                # The causing propagator is mid-`propagate` and its
                # `_queued` flag is already cleared, so a plain `schedule`
                # here would be redundant (the run is still going) while
                # skipping entirely loses the wake-up for propagators that
                # are not idempotent in one run.  `on_event` still fires so
                # dirty-set maintenance sees self-caused changes; the
                # engine re-queues the propagator after the run completes
                # (see `fixpoint`) unless it declares itself idempotent.
                if prop.on_event(var, event) and not prop.idempotent:
                    prop._self_notified = True
                continue
            if prop.on_event(var, event):
                self.schedule(prop)
        return True

    # ------------------------------------------------------------------
    # Propagation
    # ------------------------------------------------------------------
    def schedule(self, prop: Propagator) -> None:
        if not prop._queued and prop.active:
            prop._queued = True
            self._queues[prop.priority].append(prop)

    def fixpoint(self) -> None:
        """Run propagators to quiescence; raises :class:`Inconsistent` on failure."""
        queues = self._queues
        tr = self.tracer
        plain = self.prop_stats is None and (tr is None or not tr.fine)
        try:
            while True:
                prop = None
                for q in queues:
                    if q:
                        prop = q.popleft()
                        break
                if prop is None:
                    return
                prop._queued = False
                if not prop.active:
                    continue
                self.stats.propagations += 1
                prop._self_notified = False
                if plain:
                    prop.propagate(self)
                else:
                    self._propagate_instrumented(prop)
                if prop._self_notified:
                    # the run pruned one of its own watched variables and
                    # the propagator is not idempotent: without this
                    # re-queue the wake-up would be lost and the engine
                    # could report a false fixpoint (see the `prop is
                    # cause` branch in `update_domain`)
                    prop._self_notified = False
                    self.schedule(prop)
        except Inconsistent:
            self._flush_queue()
            raise

    def _propagate_instrumented(self, prop: Propagator) -> None:
        """One accounted propagator run (wall time, prunes, failures)."""
        prof = self.prop_stats
        before = self.stats.domain_updates
        if prof is None:
            prop.propagate(self)
        else:
            rec = prof.get(prop.name)
            if rec is None:
                rec = prof[prop.name] = PropagatorProfile(prop.name)
            t0 = perf_counter()
            try:
                prop.propagate(self)
            except Inconsistent:
                rec.failures += 1
                raise
            finally:
                rec.time_s += perf_counter() - t0
                rec.calls += 1
                rec.prunes += self.stats.domain_updates - before
        tr = self.tracer
        if tr is not None and tr.fine:
            tr.emit(
                PROPAGATE,
                propagator=prop.name,
                prunes=self.stats.domain_updates - before,
            )

    def _flush_queue(self) -> None:
        for q in self._queues:
            while q:
                q.popleft()._queued = False

    # ------------------------------------------------------------------
    # Search support
    # ------------------------------------------------------------------
    def push_level(self) -> int:
        return self.trail.push_level()

    def pop_level(self) -> None:
        self.trail.pop_level()
        self._flush_queue()

    def depth(self) -> int:
        return self.trail.depth()

    def all_fixed(self, variables: Optional[List[IntVar]] = None) -> bool:
        for v in variables if variables is not None else self.variables:
            if not v.is_fixed():
                return False
        return True


def _restore(var: IntVar, old: Domain) -> None:
    var.domain = old

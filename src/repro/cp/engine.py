"""Propagation engine: variables, trail, and the fixpoint loop.

The engine is the mutable heart of the solver.  It owns

* the registered variables,
* the :class:`~repro.cp.trail.Trail` used for chronological backtracking,
* a priority-bucketed propagation queue, and
* run statistics.

Domain updates flow through :meth:`Engine.update_domain`, which trails the
previous domain, classifies the modification event, and schedules the
subscribed propagators.  :meth:`Engine.fixpoint` drains the queue in
priority order until quiescence or failure.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional

from repro.cp.domain import Domain
from repro.cp.events import Event, classify
from repro.cp.propagator import Priority, Propagator
from repro.cp.stats import EngineStats
from repro.cp.trail import Trail
from repro.cp.variable import IntVar


class Inconsistent(Exception):
    """Raised when propagation wipes out a domain (the node fails)."""


_NUM_PRIORITIES = len(Priority)


class Engine:
    """Propagation engine with trailed backtracking."""

    def __init__(self) -> None:
        self.trail = Trail()
        self.variables: List[IntVar] = []
        self.propagators: List[Propagator] = []
        self._queues: List[Deque[Propagator]] = [deque() for _ in range(_NUM_PRIORITIES)]
        self.stats = EngineStats()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def register_variable(self, var: IntVar) -> int:
        self.variables.append(var)
        return len(self.variables) - 1

    def new_var(self, lo: int, hi: int, name: str = "") -> IntVar:
        """Create a variable with domain ``[lo, hi]``."""
        return IntVar(self, Domain.range(lo, hi), name)

    def new_var_from(self, domain: Domain, name: str = "") -> IntVar:
        if domain.is_empty():
            raise ValueError("cannot create a variable with an empty domain")
        return IntVar(self, domain, name)

    def post(self, propagator: Propagator) -> Propagator:
        """Register a constraint's propagator and run its initial filtering."""
        self.propagators.append(propagator)
        propagator.post(self)
        self.fixpoint()
        return propagator

    # ------------------------------------------------------------------
    # Domain updates
    # ------------------------------------------------------------------
    def update_domain(
        self, var: IntVar, new: Domain, cause: Optional[Propagator] = None
    ) -> bool:
        """Shrink ``var`` to ``new``; trail, classify, schedule. True if changed."""
        old = var.domain
        if new.mask == old.mask and (new.mask == 0 or new.offset == old.offset):
            return False
        if new.is_empty():
            self.stats.failures += 1
            raise Inconsistent(f"{var.name}: domain wiped out")
        if not new.is_subset_of(old):
            raise ValueError(
                f"update_domain must shrink: {new!r} is not a subset of {old!r}"
            )
        event = classify(old.min(), old.max(), len(old), new.min(), new.max(), len(new))
        var.domain = new
        self.trail.push(lambda: _restore(var, old))
        self.stats.domain_updates += 1
        for prop, mask in var.watchers:
            if prop is cause or not prop.active:
                continue
            if (event & mask) and prop.on_event(var, event):
                self.schedule(prop)
        return True

    # ------------------------------------------------------------------
    # Propagation
    # ------------------------------------------------------------------
    def schedule(self, prop: Propagator) -> None:
        if not prop._queued and prop.active:
            prop._queued = True
            self._queues[prop.priority].append(prop)

    def fixpoint(self) -> None:
        """Run propagators to quiescence; raises :class:`Inconsistent` on failure."""
        queues = self._queues
        try:
            while True:
                prop = None
                for q in queues:
                    if q:
                        prop = q.popleft()
                        break
                if prop is None:
                    return
                prop._queued = False
                if not prop.active:
                    continue
                self.stats.propagations += 1
                prop.propagate(self)
        except Inconsistent:
            self._flush_queue()
            raise

    def _flush_queue(self) -> None:
        for q in self._queues:
            while q:
                q.popleft()._queued = False

    # ------------------------------------------------------------------
    # Search support
    # ------------------------------------------------------------------
    def push_level(self) -> int:
        return self.trail.push_level()

    def pop_level(self) -> None:
        self.trail.pop_level()
        self._flush_queue()

    def depth(self) -> int:
        return self.trail.depth()

    def all_fixed(self, variables: Optional[List[IntVar]] = None) -> bool:
        for v in variables if variables is not None else self.variables:
            if not v.is_fixed():
                return False
        return True


def _restore(var: IntVar, old: Domain) -> None:
    var.domain = old

"""Solution checking: evaluate constraints on full assignments.

Every propagator family gets a declarative ``check(assignment)`` semantics
here, independent of its filtering code.  Two uses:

* **model debugging** — :func:`check_solution` pinpoints which constraint a
  candidate assignment violates;
* **test oracle** — the suite re-validates every solution the search
  engine emits against these definitions, so a filtering bug that leaks an
  invalid "solution" cannot hide.

The checker intentionally re-implements the semantics from the constraint
*definitions* (not by calling propagate), so it and the propagators fail
independently.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from repro.cp.constraints import (
    AbsDifference,
    AllDifferent,
    BoolOr,
    Count,
    Cumulative,
    DiffN,
    Element,
    EqualOffset,
    IffInSet,
    IffLessEqual,
    LessEqualOffset,
    LinearEqual,
    LinearLessEqual,
    Maximum,
    MinDistance,
    Minimum,
    NotEqual,
    NotEqualOffset,
    SumOfTwo,
    TableConstraint,
)
from repro.cp.model import Model
from repro.cp.propagator import Propagator
from repro.cp.variable import IntVar

Assignment = Dict[str, int]


def _value(assignment: Assignment, var: IntVar) -> int:
    try:
        return assignment[var.name]
    except KeyError:
        raise KeyError(f"assignment is missing variable {var.name!r}") from None


def _check_le(c: LessEqualOffset, a: Assignment) -> bool:
    return _value(a, c.x) + c.c <= _value(a, c.y)


def _check_eq(c: EqualOffset, a: Assignment) -> bool:
    return _value(a, c.x) == _value(a, c.y) + c.c


def _check_ne(c: NotEqual, a: Assignment) -> bool:
    return _value(a, c.x) != _value(a, c.y)


def _check_ne_off(c: NotEqualOffset, a: Assignment) -> bool:
    return _value(a, c.x) != _value(a, c.y) + c.c


def _check_sum(c: SumOfTwo, a: Assignment) -> bool:
    return _value(a, c.z) == _value(a, c.x) + _value(a, c.y)


def _check_lin_le(c: LinearLessEqual, a: Assignment) -> bool:
    return sum(k * _value(a, x) for k, x in zip(c.coeffs, c.xs)) <= c.c


def _check_lin_eq(c: LinearEqual, a: Assignment) -> bool:
    return sum(k * _value(a, x) for k, x in zip(c.coeffs, c.xs)) == c.c


def _check_element(c: Element, a: Assignment) -> bool:
    idx = _value(a, c.index)
    return 0 <= idx < len(c.table) and c.table[idx] == _value(a, c.result)


def _check_max(c: Maximum, a: Assignment) -> bool:
    return _value(a, c.m) == max(_value(a, x) for x in c.xs)


def _check_min(c: Minimum, a: Assignment) -> bool:
    return _value(a, c.m) == min(_value(a, x) for x in c.xs)


def _check_table(c: TableConstraint, a: Assignment) -> bool:
    return tuple(_value(a, x) for x in c.xs) in set(c.tuples)


def _check_alldiff(c: AllDifferent, a: Assignment) -> bool:
    values = [_value(a, x) for x in c.xs]
    return len(values) == len(set(values))


def _check_count(c: Count, a: Assignment) -> bool:
    n = sum(1 for x in c.xs if _value(a, x) == c.value)
    return c.lo <= n <= c.hi


def _check_iff_le(c: IffLessEqual, a: Assignment) -> bool:
    return (_value(a, c.b) == 1) == (_value(a, c.x) <= c.c)


def _check_iff_in(c: IffInSet, a: Assignment) -> bool:
    return (_value(a, c.b) == 1) == (_value(a, c.x) in c.values)


def _check_or(c: BoolOr, a: Assignment) -> bool:
    return any(_value(a, b) == 1 for b in c.bs)


def _check_cumulative(c: Cumulative, a: Assignment) -> bool:
    usage: Dict[int, int] = {}
    for t in c.tasks:
        s = _value(a, t.start)
        for tp in range(s, s + t.duration):
            usage[tp] = usage.get(tp, 0) + t.demand
    return all(v <= c.capacity for v in usage.values())


def _check_diffn(c: DiffN, a: Assignment) -> bool:
    boxes = [
        (_value(a, r.x), _value(a, r.y), r.w, r.h) for r in c.rects
    ]
    for i in range(len(boxes)):
        for j in range(i + 1, len(boxes)):
            ax, ay, aw, ah = boxes[i]
            bx, by, bw, bh = boxes[j]
            if ax < bx + bw and bx < ax + aw and ay < by + bh and by < ay + ah:
                return False
    return True


def _check_absdiff(c: AbsDifference, a: Assignment) -> bool:
    return _value(a, c.z) == abs(_value(a, c.x) - _value(a, c.y))


def _check_mindist(c: MinDistance, a: Assignment) -> bool:
    return abs(_value(a, c.x) - _value(a, c.y)) >= c.d


_CHECKERS: Dict[type, Callable[..., bool]] = {
    LessEqualOffset: _check_le,
    EqualOffset: _check_eq,
    NotEqual: _check_ne,
    NotEqualOffset: _check_ne_off,
    SumOfTwo: _check_sum,
    LinearLessEqual: _check_lin_le,
    LinearEqual: _check_lin_eq,
    Element: _check_element,
    Maximum: _check_max,
    Minimum: _check_min,
    TableConstraint: _check_table,
    AllDifferent: _check_alldiff,
    Count: _check_count,
    IffLessEqual: _check_iff_le,
    IffInSet: _check_iff_in,
    BoolOr: _check_or,
    Cumulative: _check_cumulative,
    DiffN: _check_diffn,
    AbsDifference: _check_absdiff,
    MinDistance: _check_mindist,
}


def checkable(constraint: Propagator) -> bool:
    """Does this constraint have a declarative checker?

    Count subclasses (AtMost/AtLeast) dispatch through Count; global
    kernels (geost, placement) have their own verifiers
    (``Geost.check_fixed``, ``PlacementResult.verify``).
    """
    return _find(constraint) is not None


def _find(constraint: Propagator) -> Optional[Callable[..., bool]]:
    for klass in type(constraint).__mro__:
        if klass in _CHECKERS:
            return _CHECKERS[klass]
    return None


def violated_constraints(
    model: Model, assignment: Assignment, strict: bool = False
) -> List[Propagator]:
    """All checkable constraints the assignment violates.

    With ``strict`` a constraint without a checker raises instead of being
    skipped.
    """
    out: List[Propagator] = []
    for c in model.constraints:
        fn = _find(c)
        if fn is None:
            if strict:
                raise TypeError(f"no checker for constraint {c!r}")
            continue
        if not fn(c, assignment):
            out.append(c)
    return out


def check_solution(
    model: Model, assignment: Assignment, strict: bool = False
) -> bool:
    """True iff the assignment satisfies every checkable constraint."""
    return not violated_constraints(model, assignment, strict)

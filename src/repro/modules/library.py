"""Module library: a named collection of IP cores.

The ReCoBus-style flow (Figure 2) takes "specification of the partial
modules"; a :class:`ModuleLibrary` is the in-memory registry those specs
load into, with lookup, filtering, and aggregate statistics used by the
reports.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional

from repro.fabric.resource import ResourceType
from repro.modules.module import Module


class ModuleLibrary:
    """An ordered, name-indexed collection of modules."""

    def __init__(self, modules: Iterable[Module] = ()) -> None:
        self._modules: Dict[str, Module] = {}
        for m in modules:
            self.add(m)

    # ------------------------------------------------------------------
    def add(self, module: Module) -> None:
        if module.name in self._modules:
            raise ValueError(f"duplicate module name {module.name!r}")
        self._modules[module.name] = module

    def remove(self, name: str) -> Module:
        try:
            return self._modules.pop(name)
        except KeyError:
            raise KeyError(f"no module named {name!r}") from None

    def get(self, name: str) -> Module:
        try:
            return self._modules[name]
        except KeyError:
            raise KeyError(f"no module named {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._modules

    def __iter__(self) -> Iterator[Module]:
        return iter(self._modules.values())

    def __len__(self) -> int:
        return len(self._modules)

    def names(self) -> List[str]:
        return list(self._modules)

    # ------------------------------------------------------------------
    def using(self, kind: ResourceType) -> List[Module]:
        """Modules with at least one shape using the given resource."""
        return [m for m in self if m.uses(kind)]

    def restricted(self, n_alternatives: int) -> "ModuleLibrary":
        """Library with every module cut to its first ``n`` alternatives."""
        return ModuleLibrary(m.restricted(n_alternatives) for m in self)

    def total_shapes(self) -> int:
        """Total shape count (paper: 30 modules -> 120 shapes with 4 alts)."""
        return sum(m.n_alternatives for m in self)

    def total_area(self, primary_only: bool = True) -> int:
        """Sum of module tile counts (primary shape by convention)."""
        return sum(m.primary().area for m in self)

    def stats(self) -> dict:
        areas = [m.primary().area for m in self]
        return {
            "modules": len(self),
            "shapes": self.total_shapes(),
            "total_area": sum(areas),
            "min_area": min(areas) if areas else 0,
            "max_area": max(areas) if areas else 0,
            "bram_modules": len(self.using(ResourceType.BRAM)),
        }

    def __repr__(self) -> str:
        return f"ModuleLibrary(n={len(self)}, shapes={self.total_shapes()})"

"""Footprint: one shape (design alternative) of a module.

A footprint is a normalized set of typed cells ``(dx, dy, kind)`` with
``min dx == min dy == 0``.  It corresponds to the paper's *shape* ``S`` —
formally a set of tilesets, one per resource type (Section III-A).  Cells
need not be adjacent and need not fill the bounding box; what the footprint
does not use remains available to other modules.

The class is immutable and hashable on its canonical cell set, so
transform pipelines can deduplicate alternatives (e.g. rot180 of a
symmetric shape collapses onto the original).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Sequence, Tuple

import numpy as np

from repro.fabric.resource import RESOURCE_CHARS, ResourceType, parse_resource
from repro.fabric.tile import Tile, TileSet

Cell = Tuple[int, int, ResourceType]


class Footprint:
    """An immutable, normalized shape."""

    __slots__ = ("cells", "width", "height", "_grid")

    def __init__(self, cells: Iterable[Cell]) -> None:
        raw = list(cells)
        if not raw:
            raise ValueError("a shape must contain at least one tile")
        seen: Dict[Tuple[int, int], ResourceType] = {}
        for dx, dy, kind in raw:
            kind = parse_resource(kind)
            if kind is ResourceType.UNAVAILABLE:
                raise ValueError("shapes cannot contain UNAVAILABLE tiles")
            if (dx, dy) in seen:
                raise ValueError(f"duplicate cell ({dx},{dy}) in shape")
            seen[(dx, dy)] = kind
        min_x = min(x for x, _ in seen)
        min_y = min(y for _, y in seen)
        normalized = frozenset(
            (x - min_x, y - min_y, k) for (x, y), k in seen.items()
        )
        object.__setattr__(self, "cells", normalized)
        object.__setattr__(
            self, "width", max(c[0] for c in normalized) + 1
        )
        object.__setattr__(
            self, "height", max(c[1] for c in normalized) + 1
        )
        object.__setattr__(self, "_grid", None)

    def __setattr__(self, *a):  # immutability
        raise AttributeError("Footprint is immutable")

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @staticmethod
    def rectangle(w: int, h: int, kind: ResourceType = ResourceType.CLB) -> "Footprint":
        if w <= 0 or h <= 0:
            raise ValueError("rectangle sides must be positive")
        return Footprint((x, y, kind) for x in range(w) for y in range(h))

    @staticmethod
    def from_rows(rows: Sequence[str]) -> "Footprint":
        """Parse ASCII art (top row first; spaces/'_' are empty cells)."""
        cells: List[Cell] = []
        height = len(rows)
        rev = {ch: kind for kind, ch in RESOURCE_CHARS.items()}
        for r, row in enumerate(rows):
            y = height - 1 - r
            for x, ch in enumerate(row):
                if ch in (" ", "_"):
                    continue
                if ch not in rev or rev[ch] is ResourceType.UNAVAILABLE:
                    raise ValueError(f"bad footprint char {ch!r}")
                cells.append((x, y, rev[ch]))
        return Footprint(cells)

    @staticmethod
    def from_tilesets(tilesets: Iterable[TileSet]) -> "Footprint":
        """From the paper's formal shape = set of tilesets."""
        cells: List[Cell] = []
        for ts in tilesets:
            for t in ts:
                cells.append((t.x, t.y, t.kind))
        return Footprint(cells)

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    @property
    def area(self) -> int:
        """Number of used tiles (not the bounding-box area)."""
        return len(self.cells)

    @property
    def bbox_area(self) -> int:
        return self.width * self.height

    def resource_counts(self) -> Dict[ResourceType, int]:
        out: Dict[ResourceType, int] = {}
        for _, _, k in self.cells:
            out[k] = out.get(k, 0) + 1
        return out

    def coords(self) -> FrozenSet[Tuple[int, int]]:
        return frozenset((x, y) for x, y, _ in self.cells)

    def cells_of(self, kind: ResourceType) -> FrozenSet[Tuple[int, int]]:
        return frozenset((x, y) for x, y, k in self.cells if k is kind)

    def grid(self) -> np.ndarray:
        """Dense (h, w) int8 view: resource code per cell, -1 where unused."""
        if self._grid is None:
            g = np.full((self.height, self.width), -1, dtype=np.int8)
            for x, y, k in self.cells:
                g[y, x] = int(k)
            object.__setattr__(self, "_grid", g)
        return self._grid

    def occupancy(self) -> np.ndarray:
        """Dense (h, w) boolean mask of used cells."""
        return self.grid() >= 0

    def offsets(self) -> np.ndarray:
        """(n, 2) array of (dy, dx) used-cell offsets, for fast imprinting."""
        ys, xs = np.nonzero(self.occupancy())
        return np.stack([ys, xs], axis=1)

    def is_rectangular(self) -> bool:
        return self.area == self.bbox_area

    def tilesets(self) -> List[TileSet]:
        """Back to the paper's formal representation (one tileset per type)."""
        by_kind: Dict[ResourceType, List[Tile]] = {}
        for x, y, k in self.cells:
            by_kind.setdefault(k, []).append(Tile(x, y, k))
        return [TileSet(ts) for ts in by_kind.values()]

    # ------------------------------------------------------------------
    def render(self) -> str:
        g = self.grid()
        chars = {int(k): c for k, c in RESOURCE_CHARS.items()}
        return "\n".join(
            "".join(chars[int(v)] if v >= 0 else " " for v in row)
            for row in g[::-1]
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Footprint):
            return NotImplemented
        return self.cells == other.cells

    def __hash__(self) -> int:
        return hash(self.cells)

    def __repr__(self) -> str:
        counts = ", ".join(
            f"{k.name}:{n}" for k, n in sorted(self.resource_counts().items())
        )
        return f"Footprint({self.width}x{self.height}, {counts})"

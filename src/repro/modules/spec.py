"""Module specification files.

The design flow's module specs (Figure 2) are JSON: each module is a name
plus a list of shapes, each shape ASCII-art rows over the resource alphabet
(:data:`repro.fabric.resource.RESOURCE_CHARS`), top row first::

    {
      "modules": [
        {"name": "fir", "shapes": [["..B", "..B", "..."], ["...", "B.."]]}
      ]
    }

This mirrors the paper's flow where "a user can add module bounding box
definitions" on top of the netlists.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import List, Union

from repro.modules.footprint import Footprint
from repro.modules.library import ModuleLibrary
from repro.modules.module import Module


def footprint_to_rows(fp: Footprint) -> List[str]:
    """ASCII rows of a footprint, top row first."""
    return fp.render().splitlines()


def module_to_dict(module: Module) -> dict:
    """Serialize one module to the spec structure."""
    return {
        "name": module.name,
        "shapes": [footprint_to_rows(s) for s in module.shapes],
        "info": module.info,
    }


def module_from_dict(data: dict) -> Module:
    """Inverse of :func:`module_to_dict` (validates required keys)."""
    if "name" not in data or "shapes" not in data:
        raise ValueError("module spec needs 'name' and 'shapes'")
    shapes = [Footprint.from_rows(rows) for rows in data["shapes"]]
    return Module(data["name"], shapes, data.get("info"))


def save_modules(library: ModuleLibrary, path: Union[str, Path]) -> None:
    """Write a module spec file for a whole library."""
    payload = {"modules": [module_to_dict(m) for m in library]}
    Path(path).write_text(json.dumps(payload, indent=2))


def load_modules(path: Union[str, Path]) -> ModuleLibrary:
    """Read a module spec file into a library."""
    data = json.loads(Path(path).read_text())
    if "modules" not in data:
        raise ValueError("module spec file needs a 'modules' list")
    return ModuleLibrary(module_from_dict(m) for m in data["modules"])

"""Module model: footprints, design alternatives, generators.

A *module* (Section III-A) is a set of functionally equivalent *shapes*
(design alternatives); each shape is a set of typed tiles.  Shapes need not
cover their bounding box — only the tiles a shape actually uses are
resource-checked and overlap-checked, which is exactly the paper's
formulation (constraints range over the tiles of the shape, Eqs. 2-4).
"""

from repro.modules.footprint import Footprint
from repro.modules.module import Module
from repro.modules.transform import (
    mirror_horizontal,
    mirror_vertical,
    rotate90,
    rotate180,
    rotate270,
)
from repro.modules.generator import GeneratorConfig, ModuleGenerator
from repro.modules.library import ModuleLibrary
from repro.modules.spec import module_from_dict, module_to_dict, load_modules, save_modules
from repro.modules.validation import validate_footprint, validate_module

__all__ = [
    "Footprint",
    "Module",
    "mirror_horizontal",
    "mirror_vertical",
    "rotate90",
    "rotate180",
    "rotate270",
    "GeneratorConfig",
    "ModuleGenerator",
    "ModuleLibrary",
    "module_from_dict",
    "module_to_dict",
    "load_modules",
    "save_modules",
    "validate_footprint",
    "validate_module",
]

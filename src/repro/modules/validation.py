"""Module design rules.

Section III-A: "Usually the tiles, which constitute a shape, are located
directly adjacent to one another.  However, this is not a requirement.
Routing restrictions place some limits on the freedom to construct modules
with nonadjacent tiles.  We therefore do not consider such design
alternatives."

This module makes those rules explicit and checkable:

* **connectivity** — a shape's tiles form one 4-connected component
  (routable without leaving the module's own area);
* **vertical dedicated strips** — BRAM/DSP cells form vertical runs, one
  column each (column-oriented fabrics cannot host horizontal strips);
* **aspect sanity** — bounding boxes within a configurable aspect-ratio
  band (extremely elongated modules are unroutable in practice).

`validate_module` aggregates per-shape findings; the generator's output is
tested to be rule-clean, and spec files can be linted on load.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from repro.fabric.resource import ResourceType
from repro.modules.footprint import Footprint
from repro.modules.module import Module


@dataclass
class Violation:
    """One broken design rule."""

    rule: str
    detail: str

    def __str__(self) -> str:
        return f"{self.rule}: {self.detail}"


def connected_components(cells: Set[Tuple[int, int]]) -> List[Set[Tuple[int, int]]]:
    """4-connected components of a cell set."""
    remaining = set(cells)
    out: List[Set[Tuple[int, int]]] = []
    while remaining:
        seed = next(iter(remaining))
        comp = {seed}
        frontier = [seed]
        remaining.discard(seed)
        while frontier:
            x, y = frontier.pop()
            for nxt in ((x + 1, y), (x - 1, y), (x, y + 1), (x, y - 1)):
                if nxt in remaining:
                    remaining.discard(nxt)
                    comp.add(nxt)
                    frontier.append(nxt)
        out.append(comp)
    return out


def check_connectivity(fp: Footprint) -> List[Violation]:
    """Rule: tiles form one 4-connected component (Section III-A)."""
    comps = connected_components(set(fp.coords()))
    if len(comps) == 1:
        return []
    return [
        Violation(
            "connectivity",
            f"shape splits into {len(comps)} disconnected tile groups "
            f"(routing cannot leave the module area)",
        )
    ]


def check_vertical_strips(fp: Footprint) -> List[Violation]:
    """Dedicated resources must form vertical, per-column runs."""
    out: List[Violation] = []
    for kind in (ResourceType.BRAM, ResourceType.DSP):
        cells = sorted(fp.cells_of(kind))
        by_col: Dict[int, List[int]] = {}
        for x, y in cells:
            by_col.setdefault(x, []).append(y)
        for x, ys in by_col.items():
            ys.sort()
            if ys != list(range(ys[0], ys[0] + len(ys))):
                out.append(
                    Violation(
                        "vertical-strip",
                        f"{kind.name} cells in column {x} are not a "
                        f"contiguous vertical run: rows {ys}",
                    )
                )
    return out


def check_aspect(fp: Footprint, max_ratio: float = 8.0) -> List[Violation]:
    """Rule: bounding-box aspect ratio within the routable band."""
    ratio = max(fp.width, fp.height) / min(fp.width, fp.height)
    if ratio > max_ratio:
        return [
            Violation(
                "aspect",
                f"bounding box {fp.width}x{fp.height} has ratio "
                f"{ratio:.1f} > {max_ratio}",
            )
        ]
    return []


@dataclass
class ValidationReport:
    """Per-shape violations of one module."""

    module: str
    by_shape: Dict[int, List[Violation]] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not any(self.by_shape.values())

    def all_violations(self) -> List[Violation]:
        return [v for vs in self.by_shape.values() for v in vs]

    def __str__(self) -> str:
        if self.ok:
            return f"{self.module}: ok"
        lines = [f"{self.module}:"]
        for sid, vs in self.by_shape.items():
            for v in vs:
                lines.append(f"  shape {sid}: {v}")
        return "\n".join(lines)


def validate_footprint(
    fp: Footprint, max_aspect_ratio: float = 8.0
) -> List[Violation]:
    """All design-rule violations of one shape."""
    return (
        check_connectivity(fp)
        + check_vertical_strips(fp)
        + check_aspect(fp, max_aspect_ratio)
    )


def validate_module(
    module: Module, max_aspect_ratio: float = 8.0
) -> ValidationReport:
    """Design-rule report across all shapes of a module."""
    report = ValidationReport(module.name)
    for sid, fp in enumerate(module.shapes):
        vs = validate_footprint(fp, max_aspect_ratio)
        if vs:
            report.by_shape[sid] = vs
    return report

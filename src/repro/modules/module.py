"""Module: a named set of design alternatives.

``M = {S_1, ..., S_n}, n > 0`` (Section III-A).  Alternatives are
functionally equivalent implementations; the placement model chooses one
per module via its *shape variable*.  The paper permits alternatives with
different tile counts and resource mixes ("there is no constraint defined
in the placement model which limits the different shapes ... in this way"),
so :class:`Module` only enforces non-emptiness and offers an equivalence
report rather than a hard check.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Sequence

from repro.fabric.resource import ResourceType
from repro.modules.footprint import Footprint
from repro.modules.transform import distinct_footprints


@dataclass(frozen=True)
class Module:
    """A reconfigurable module with one or more shape alternatives."""

    name: str
    shapes: tuple
    #: free-form metadata (e.g. the netlist/IP core it came from)
    info: dict = field(default_factory=dict, compare=False, hash=False)

    def __init__(self, name: str, shapes: Sequence[Footprint], info: dict | None = None):
        shapes_t = tuple(distinct_footprints(list(shapes)))
        if not shapes_t:
            raise ValueError(f"module {name!r} needs at least one shape")
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "shapes", shapes_t)
        object.__setattr__(self, "info", dict(info or {}))

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.shapes)

    def __iter__(self) -> Iterator[Footprint]:
        return iter(self.shapes)

    @property
    def n_alternatives(self) -> int:
        return len(self.shapes)

    def primary(self) -> Footprint:
        """The first (reference) shape."""
        return self.shapes[0]

    def restricted(self, n: int) -> "Module":
        """A copy keeping only the first ``n`` alternatives (n >= 1).

        Used by the Table I experiment to compare 'without design
        alternatives' (n=1) against 'with' (n=4) on identical modules.
        """
        if n < 1:
            raise ValueError("must keep at least one alternative")
        return Module(self.name, self.shapes[:n], self.info)

    def min_area(self) -> int:
        return min(s.area for s in self.shapes)

    def max_area(self) -> int:
        return max(s.area for s in self.shapes)

    def min_width(self) -> int:
        return min(s.width for s in self.shapes)

    def resource_counts(self) -> Dict[ResourceType, int]:
        """Resource requirement of the primary shape."""
        return self.primary().resource_counts()

    def is_resource_equivalent(self) -> bool:
        """Do all alternatives consume identical resource multisets?

        True for the paper's Figure 1 example; not required in general.
        """
        ref = self.primary().resource_counts()
        return all(s.resource_counts() == ref for s in self.shapes)

    def uses(self, kind: ResourceType) -> bool:
        return any(kind in s.resource_counts() for s in self.shapes)

    def __repr__(self) -> str:
        return (
            f"Module({self.name!r}, alternatives={len(self.shapes)}, "
            f"area={self.primary().area})"
        )

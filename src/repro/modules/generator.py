"""Random module generator matching the paper's workload.

Section V-A: "test results are derived from 50 runs of placing 30
automatically generated modules ... resource requirements ... between 20
and 100 CLBs, and between 0 and 4 embedded memory blocks.  The module
alternatives considered include variants in which the module is rotated 180
degrees and additionally have different internal and external layout. ...
A module is represented with four different module shapes."

:class:`ModuleGenerator` reproduces exactly that distribution; the four
alternatives per module are

1. the base layout,
2. its 180-degree rotation,
3. an *internal* relayout (same bounding box, BRAM strip at a different
   internal column / anchored at the other end), and
4. an *external* relayout (different bounding box, same resources).

All randomness is seeded, so every experiment is reproducible run-to-run.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional

from repro.fabric.resource import ResourceType
from repro.modules.footprint import Footprint
from repro.modules.module import Module
from repro.modules.transform import (
    build_body,
    distinct_footprints,
    external_relayout,
    internal_relayout,
    rotate90,
    rotate180,
)


@dataclass
class GeneratorConfig:
    """Workload parameters (defaults = the paper's Table I workload)."""

    clb_min: int = 20
    clb_max: int = 100
    bram_min: int = 0
    bram_max: int = 4
    #: candidate body heights (in tiles) for the base layout
    height_min: int = 4
    height_max: int = 10
    #: maximum CLB-body width in columns.  Real modules on column-oriented
    #: fabrics are tall and narrow so their logic fits between dedicated
    #: resource columns; the sampled height is raised when necessary so the
    #: body never exceeds this width.
    max_width: int = 6
    #: how many shape alternatives to emit per module (paper: 4)
    n_alternatives: int = 4

    def validate(self) -> None:
        if not (0 < self.clb_min <= self.clb_max):
            raise ValueError("invalid CLB range")
        if not (0 <= self.bram_min <= self.bram_max):
            raise ValueError("invalid BRAM range")
        if not (0 < self.height_min <= self.height_max):
            raise ValueError("invalid height range")
        if self.max_width < 1:
            raise ValueError("max_width must be >= 1")
        if self.n_alternatives < 1:
            raise ValueError("n_alternatives must be >= 1")


class ModuleGenerator:
    """Seeded generator of modules with design alternatives."""

    def __init__(self, seed: int = 0, config: Optional[GeneratorConfig] = None):
        self.rng = random.Random(seed)
        self.config = config or GeneratorConfig()
        self.config.validate()
        self._counter = 0

    # ------------------------------------------------------------------
    def generate(self) -> Module:
        """One module with up to ``n_alternatives`` distinct shapes."""
        cfg, rng = self.config, self.rng
        self._counter += 1
        n_clb = rng.randint(cfg.clb_min, cfg.clb_max)
        n_bram = rng.randint(cfg.bram_min, cfg.bram_max)
        height = rng.randint(cfg.height_min, cfg.height_max)
        # keep the body within max_width columns (tall-narrow modules)
        height = max(height, -(-n_clb // cfg.max_width))
        n_cols = -(-n_clb // height)
        bram_col = rng.randint(0, n_cols) if n_bram else 0

        base = build_body(n_clb, height, n_bram, bram_col)
        alternatives: List[Footprint] = [base]

        # 2) rigid rotation by 180 degrees (always legal)
        alternatives.append(rotate180(base))

        # 3) internal relayout: same bbox, strip moved / re-anchored
        if n_bram:
            other_col = rng.choice(
                [c for c in range(n_cols + 1) if c != bram_col] or [bram_col]
            )
            alternatives.append(
                build_body(n_clb, height, n_bram, other_col, bram_from_top=True)
            )
        else:
            # no dedicated resources: a horizontal mirror is the internal
            # variant (same bbox, different tile arrangement)
            alternatives.append(internal_relayout(base, rng))
            from repro.modules.transform import mirror_horizontal

            alternatives.append(mirror_horizontal(base))

        # 4) external relayout: different bounding box
        alt_height = self._different_height(height, n_clb)
        alternatives.append(external_relayout(base, alt_height))
        if not n_bram:
            # BRAM-free modules may also rotate 90 degrees (the paper's
            # restriction only applies to embedded-memory modules)
            alternatives.append(rotate90(base))

        shapes = distinct_footprints(alternatives)[: cfg.n_alternatives]
        return Module(
            f"mod{self._counter:03d}",
            shapes,
            info={"n_clb": n_clb, "n_bram": n_bram, "base_height": height},
        )

    def _different_height(self, height: int, n_clb: int) -> int:
        """A body height different from ``height`` but still legal."""
        cfg, rng = self.config, self.rng
        # the re-aspected body may be a few tiles taller or shorter, but
        # must still respect the max_width column budget
        lo = max(cfg.height_min, height - 3, -(-n_clb // cfg.max_width))
        hi = height + 3
        options = [h for h in range(lo, hi + 1) if h != height]
        return rng.choice(options) if options else height

    def generate_set(self, n: int) -> List[Module]:
        """The paper's unit of work: a set of ``n`` modules (Table I: 30)."""
        return [self.generate() for _ in range(n)]

"""Geometric and layout transforms producing design alternatives.

The paper's alternatives (Section V-A) are: 180-degree rotation, *internal*
relayout (same bounding box, dedicated resources at different positions
within the module) and *external* relayout (different bounding box).  It
also notes that modules using embedded memory cannot simply be rotated
90/270 degrees, because BRAM columns are vertical on the fabric — their
external bounding box can be re-aspected only if the internal position of
resources is adjusted (BRAM strips stay vertical).

Transforms operate on :class:`~repro.modules.footprint.Footprint` objects
and return new footprints (normalization is automatic).
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.fabric.resource import ResourceType
from repro.modules.footprint import Footprint


# ----------------------------------------------------------------------
# Rigid transforms
# ----------------------------------------------------------------------
def rotate180(fp: Footprint) -> Footprint:
    """Rotate by 180 degrees (always fabric-legal; the paper's default)."""
    return Footprint((-x, -y, k) for x, y, k in fp.cells)


def rotate90(fp: Footprint) -> Footprint:
    """Rotate counter-clockwise by 90 degrees.

    Only fabric-legal for modules without vertical dedicated-resource
    strips; the paper notes rotations by 90/270 require internal changes
    for BRAM modules.  The caller decides applicability (see
    :func:`repro.core.alternatives.legal_rigid_transforms`).
    """
    return Footprint((-y, x, k) for x, y, k in fp.cells)


def rotate270(fp: Footprint) -> Footprint:
    """Rotate counter-clockwise by 270 degrees (inverse of rotate90)."""
    return Footprint((y, -x, k) for x, y, k in fp.cells)


def mirror_horizontal(fp: Footprint) -> Footprint:
    """Mirror across the vertical axis (x -> -x)."""
    return Footprint((-x, y, k) for x, y, k in fp.cells)


def mirror_vertical(fp: Footprint) -> Footprint:
    """Mirror across the horizontal axis (y -> -y)."""
    return Footprint((x, -y, k) for x, y, k in fp.cells)


# ----------------------------------------------------------------------
# Layout transforms (body builders used by generator & relayouts)
# ----------------------------------------------------------------------
def build_body(
    n_clb: int,
    height: int,
    bram_cells: int = 0,
    bram_column: int = 0,
    bram_from_top: bool = False,
) -> Footprint:
    """Construct a module layout: a CLB body plus one vertical BRAM strip.

    The CLB body fills columns of the given ``height`` left-to-right,
    bottom-to-top (the final column may be partial, giving an L-shaped
    outline).  If ``bram_cells > 0`` a vertical strip of BRAM tiles is
    inserted as column index ``bram_column`` of the layout; CLB columns at
    or right of it shift one step right.  ``bram_from_top`` anchors the
    strip at the top of the body instead of the bottom.

    This mirrors how IP cores map onto column-oriented fabrics: logic in
    CLB columns, memory in a neighbouring BRAM column.
    """
    if n_clb <= 0:
        raise ValueError("a module needs at least one CLB")
    if height <= 0:
        raise ValueError("height must be positive")
    if bram_cells < 0:
        raise ValueError("bram_cells must be non-negative")
    n_cols = -(-n_clb // height)  # ceil
    if bram_cells > 0 and not 0 <= bram_column <= n_cols:
        raise ValueError(f"bram_column must be within [0, {n_cols}]")

    cells = []
    remaining = n_clb
    for col in range(n_cols):
        x = col + (1 if bram_cells > 0 and col >= bram_column else 0)
        col_h = min(height, remaining)
        for y in range(col_h):
            cells.append((x, y, ResourceType.CLB))
        remaining -= col_h
    if bram_cells > 0:
        strip_h = bram_cells
        body_h = min(height, n_clb)  # height actually reached by the body
        if bram_from_top:
            y0 = max(0, body_h - strip_h)
        else:
            y0 = 0
        for j in range(strip_h):
            cells.append((bram_column, y0 + j, ResourceType.BRAM))
        # routing rule (Section III-A): tiles must stay adjacent.  A
        # top-anchored strip can disconnect a short final column whose
        # cells end below the strip; fall back to bottom anchoring then
        # (bottom-anchored strips always touch row 0 of their neighbours).
        if bram_from_top and y0 > 0:
            from repro.modules.validation import connected_components

            fp = Footprint(cells)
            if len(connected_components(set(fp.coords()))) > 1:
                return build_body(
                    n_clb, height, bram_cells, bram_column, bram_from_top=False
                )
            return fp
    return Footprint(cells)


def internal_relayout(
    fp: Footprint, rng: Optional[random.Random] = None
) -> Footprint:
    """Move dedicated-resource strips to a different internal position.

    Keeps the bounding box and all resource counts; only the column index
    and vertical anchoring of the BRAM/DSP strips change.  Returns ``fp``
    itself if the module has no dedicated resources (nothing to move).
    """
    rng = rng or random.Random(0)
    dedicated = [(x, y, k) for x, y, k in fp.cells if k.is_dedicated]
    if not dedicated:
        return fp
    plain = [(x, y, k) for x, y, k in fp.cells if not k.is_dedicated]
    ded_cols = sorted({x for x, _, _ in dedicated})
    plain_cols = sorted({x for x, _, _ in plain})
    if not plain_cols:
        return fp
    # choose a new column position for the strip among the body columns
    choices = [c for c in range(fp.width) if c not in ded_cols]
    if not choices:
        return fp
    new_col = rng.choice(choices)
    old_col = ded_cols[0]
    moved = [(new_col, y, k) for _, y, k in dedicated]
    # swap: plain cells that sat in new_col move to the vacated column(s)
    out = []
    for x, y, k in plain:
        if x == new_col:
            out.append((old_col, y, k))
        else:
            out.append((x, y, k))
    # collision check: if the swap created duplicates, bail out unchanged
    all_cells = out + moved
    if len({(x, y) for x, y, _ in all_cells}) != len(all_cells):
        return fp
    return Footprint(all_cells)


def external_relayout(fp: Footprint, new_height: int) -> Footprint:
    """Re-aspect the CLB body to ``new_height``, keeping strips vertical.

    This is the paper's *external layout* alternative: a different bounding
    box with identical resource consumption.  Dedicated strips remain
    vertical columns (they cannot rotate on a column-oriented fabric); only
    the CLB body is re-packed.
    """
    counts = fp.resource_counts()
    n_clb = counts.get(ResourceType.CLB, 0)
    n_bram = counts.get(ResourceType.BRAM, 0)
    others = {
        k: n for k, n in counts.items()
        if k not in (ResourceType.CLB, ResourceType.BRAM)
    }
    if others:
        raise ValueError(
            f"external_relayout supports CLB+BRAM shapes, got extra {others}"
        )
    if n_clb == 0:
        return fp
    if new_height <= 0:
        raise ValueError("new_height must be positive")
    if n_bram > new_height:
        # the strip wouldn't fit the new body height; keep strip anchored at 0
        # and let the bbox grow — still a valid alternative
        pass
    n_cols = -(-n_clb // new_height)
    return build_body(
        n_clb,
        new_height,
        bram_cells=n_bram,
        bram_column=n_cols // 2 if n_bram else 0,
    )


def distinct_footprints(fps: List[Footprint]) -> List[Footprint]:
    """Deduplicate while preserving order (alternatives may coincide)."""
    seen = set()
    out = []
    for fp in fps:
        if fp not in seen:
            seen.add(fp)
            out.append(fp)
    return out
